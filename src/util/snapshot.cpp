#include "util/snapshot.hpp"

#include <bit>
#include <cstring>
#include <istream>
#include <ostream>

#include "util/check.hpp"

namespace wdm::util {

namespace {

constexpr char kMagic[8] = {'W', 'D', 'M', 'S', 'N', 'A', 'P', '1'};

/// Guards the payload-size field of a frame against hostile or corrupt
/// headers sizing our allocation: no interconnect snapshot is remotely this
/// large (the biggest component is the N*k occupancy plane).
constexpr std::uint64_t kMaxPayload = 1ull << 32;

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

}  // namespace

std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

void SnapshotWriter::u8(std::uint8_t v) { payload_.push_back(v); }

void SnapshotWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    payload_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void SnapshotWriter::u64(std::uint64_t v) { put_u64(payload_, v); }

void SnapshotWriter::i32(std::int32_t v) {
  u32(static_cast<std::uint32_t>(v));
}

void SnapshotWriter::i64(std::int64_t v) {
  u64(static_cast<std::uint64_t>(v));
}

void SnapshotWriter::f64(double v) {
  u64(std::bit_cast<std::uint64_t>(v));
}

void SnapshotWriter::bytes(std::span<const std::uint8_t> v) {
  payload_.insert(payload_.end(), v.begin(), v.end());
}

void SnapshotWriter::vec_u8(const std::vector<std::uint8_t>& v) {
  u64(v.size());
  bytes(v);
}

void SnapshotWriter::vec_i32(const std::vector<std::int32_t>& v) {
  u64(v.size());
  for (const auto x : v) i32(x);
}

void SnapshotWriter::vec_u64(const std::vector<std::uint64_t>& v) {
  u64(v.size());
  for (const auto x : v) u64(x);
}

void SnapshotWriter::vec_f64(const std::vector<double>& v) {
  u64(v.size());
  for (const auto x : v) f64(x);
}

std::uint64_t SnapshotWriter::digest() const noexcept {
  return fnv1a64(payload_);
}

void SnapshotWriter::write_to(std::ostream& os) const {
  std::vector<std::uint8_t> frame;
  frame.reserve(sizeof kMagic + 4 + 8 + 8 + payload_.size());
  for (const char c : kMagic) frame.push_back(static_cast<std::uint8_t>(c));
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<std::uint8_t>(kSnapshotVersion >> (8 * i)));
  }
  put_u64(frame, payload_.size());
  put_u64(frame, digest());
  frame.insert(frame.end(), payload_.begin(), payload_.end());
  os.write(reinterpret_cast<const char*>(frame.data()),
           static_cast<std::streamsize>(frame.size()));
  WDM_CHECK_MSG(os.good(), "snapshot write failed");
}

SnapshotReader::SnapshotReader(std::istream& is) {
  char magic[sizeof kMagic];
  is.read(magic, sizeof magic);
  WDM_CHECK_MSG(is.gcount() == sizeof magic &&
                    std::memcmp(magic, kMagic, sizeof kMagic) == 0,
                "not a wdmsched snapshot (bad magic)");
  std::uint8_t head[4 + 8 + 8];
  is.read(reinterpret_cast<char*>(head), sizeof head);
  WDM_CHECK_MSG(is.gcount() == sizeof head, "snapshot header truncated");
  std::uint32_t version = 0;
  for (int i = 0; i < 4; ++i) {
    version |= static_cast<std::uint32_t>(head[i]) << (8 * i);
  }
  WDM_CHECK_MSG(version == kSnapshotVersion,
                "unsupported snapshot version " + std::to_string(version) +
                    " (this build reads v" +
                    std::to_string(kSnapshotVersion) + ")");
  std::uint64_t size = 0;
  std::uint64_t want_digest = 0;
  for (int i = 0; i < 8; ++i) {
    size |= static_cast<std::uint64_t>(head[4 + i]) << (8 * i);
    want_digest |= static_cast<std::uint64_t>(head[12 + i]) << (8 * i);
  }
  WDM_CHECK_MSG(size <= kMaxPayload, "snapshot payload implausibly large");
  payload_.resize(static_cast<std::size_t>(size));
  is.read(reinterpret_cast<char*>(payload_.data()),
          static_cast<std::streamsize>(size));
  WDM_CHECK_MSG(static_cast<std::uint64_t>(is.gcount()) == size,
                "snapshot payload truncated");
  digest_ = fnv1a64(payload_);
  WDM_CHECK_MSG(digest_ == want_digest,
                "snapshot digest mismatch (corrupt checkpoint)");
}

SnapshotReader SnapshotReader::from_payload(std::vector<std::uint8_t> payload) {
  SnapshotReader r;
  r.payload_ = std::move(payload);
  r.digest_ = fnv1a64(r.payload_);
  return r;
}

void SnapshotReader::need(std::uint64_t n) const {
  // Subtraction form: cursor_ <= size always holds, and a hostile n cannot
  // wrap the comparison the way `cursor_ + n` could.
  WDM_CHECK_MSG(n <= payload_.size() - cursor_,
                "snapshot payload shorter than its schema");
}

void SnapshotReader::need_elems(std::uint64_t count,
                                std::size_t elem_size) const {
  WDM_CHECK_MSG(count <= (payload_.size() - cursor_) / elem_size,
                "snapshot payload shorter than its schema");
}

std::uint8_t SnapshotReader::u8() {
  need(1);
  return payload_[cursor_++];
}

std::uint32_t SnapshotReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(payload_[cursor_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  cursor_ += 4;
  return v;
}

std::uint64_t SnapshotReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(payload_[cursor_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  cursor_ += 8;
  return v;
}

std::int32_t SnapshotReader::i32() {
  return static_cast<std::int32_t>(u32());
}

std::int64_t SnapshotReader::i64() {
  return static_cast<std::int64_t>(u64());
}

double SnapshotReader::f64() { return std::bit_cast<double>(u64()); }

std::vector<std::uint8_t> SnapshotReader::raw(std::uint64_t n) {
  need_elems(n, 1);
  std::vector<std::uint8_t> v(
      payload_.begin() + static_cast<std::ptrdiff_t>(cursor_),
      payload_.begin() + static_cast<std::ptrdiff_t>(cursor_ + n));
  cursor_ += static_cast<std::size_t>(n);
  return v;
}

std::vector<std::uint8_t> SnapshotReader::vec_u8() {
  const std::uint64_t n = u64();
  need_elems(n, 1);
  std::vector<std::uint8_t> v(payload_.begin() + static_cast<std::ptrdiff_t>(cursor_),
                              payload_.begin() +
                                  static_cast<std::ptrdiff_t>(cursor_ + n));
  cursor_ += static_cast<std::size_t>(n);
  return v;
}

std::vector<std::int32_t> SnapshotReader::vec_i32() {
  const std::uint64_t n = u64();
  need_elems(n, 4);
  std::vector<std::int32_t> v;
  v.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(i32());
  return v;
}

std::vector<std::uint64_t> SnapshotReader::vec_u64() {
  const std::uint64_t n = u64();
  need_elems(n, 8);
  std::vector<std::uint64_t> v;
  v.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(u64());
  return v;
}

std::vector<double> SnapshotReader::vec_f64() {
  const std::uint64_t n = u64();
  need_elems(n, 8);
  std::vector<double> v;
  v.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(f64());
  return v;
}

}  // namespace wdm::util
