// Minimal command-line option parser for the examples and bench harnesses.
//
// Supports `--name=value`, `--name value`, and boolean `--flag`. Options are
// declared with defaults and help text so every binary can print a consistent
// `--help`. Unknown options are an error (typos in sweep parameters silently
// changing an experiment is worse than a hard failure).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace wdm::util {

class Cli {
 public:
  /// `program` and `summary` feed the --help banner.
  Cli(std::string program, std::string summary);

  /// Declares an option. `default_value` is also what --help displays.
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& help);
  /// Declares a boolean flag (false unless present).
  void add_flag(const std::string& name, const std::string& help);

  /// Parses argv. Returns false (after printing usage) on --help or error.
  bool parse(int argc, const char* const* argv);

  std::string get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_flag(const std::string& name) const;
  /// Comma-separated list of doubles, e.g. --loads=0.1,0.2,0.3.
  std::vector<double> get_double_list(const std::string& name) const;
  /// Comma-separated list of integers.
  std::vector<std::int64_t> get_int_list(const std::string& name) const;

  std::string usage() const;

 private:
  struct Option {
    std::string default_value;
    std::string help;
    bool is_flag = false;
  };

  std::string program_;
  std::string summary_;
  std::vector<std::string> order_;  // declaration order for --help
  std::map<std::string, Option> options_;
  std::map<std::string, std::string> values_;
};

}  // namespace wdm::util
