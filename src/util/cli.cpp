#include "util/cli.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "util/check.hpp"

namespace wdm::util {

Cli::Cli(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

void Cli::add_option(const std::string& name, const std::string& default_value,
                     const std::string& help) {
  WDM_CHECK_MSG(!options_.contains(name), "duplicate option: " + name);
  options_[name] = Option{default_value, help, /*is_flag=*/false};
  order_.push_back(name);
}

void Cli::add_flag(const std::string& name, const std::string& help) {
  WDM_CHECK_MSG(!options_.contains(name), "duplicate flag: " + name);
  options_[name] = Option{"false", help, /*is_flag=*/true};
  order_.push_back(name);
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n%s", arg.c_str(),
                   usage().c_str());
      return false;
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    const auto it = options_.find(arg);
    if (it == options_.end()) {
      std::fprintf(stderr, "unknown option: --%s\n%s", arg.c_str(), usage().c_str());
      return false;
    }
    if (it->second.is_flag) {
      values_[arg] = has_value ? value : "true";
    } else if (has_value) {
      values_[arg] = value;
    } else if (i + 1 < argc) {
      values_[arg] = argv[++i];
    } else {
      std::fprintf(stderr, "option --%s needs a value\n%s", arg.c_str(),
                   usage().c_str());
      return false;
    }
  }
  return true;
}

std::string Cli::get(const std::string& name) const {
  const auto opt = options_.find(name);
  WDM_CHECK_MSG(opt != options_.end(), "undeclared option queried: " + name);
  const auto it = values_.find(name);
  return it != values_.end() ? it->second : opt->second.default_value;
}

std::int64_t Cli::get_int(const std::string& name) const {
  const std::string v = get(name);
  try {
    return std::stoll(v);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name + " is not an integer: " + v);
  }
}

double Cli::get_double(const std::string& name) const {
  const std::string v = get(name);
  try {
    return std::stod(v);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name + " is not a number: " + v);
  }
}

bool Cli::get_flag(const std::string& name) const {
  const std::string v = get(name);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

namespace {
std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> parts;
  std::stringstream ss(s);
  std::string part;
  while (std::getline(ss, part, ',')) {
    if (!part.empty()) parts.push_back(part);
  }
  return parts;
}
}  // namespace

std::vector<double> Cli::get_double_list(const std::string& name) const {
  std::vector<double> out;
  for (const auto& part : split_commas(get(name))) out.push_back(std::stod(part));
  return out;
}

std::vector<std::int64_t> Cli::get_int_list(const std::string& name) const {
  std::vector<std::int64_t> out;
  for (const auto& part : split_commas(get(name))) out.push_back(std::stoll(part));
  return out;
}

std::string Cli::usage() const {
  std::ostringstream os;
  os << program_ << " — " << summary_ << "\n\noptions:\n";
  for (const auto& name : order_) {
    const auto& opt = options_.at(name);
    os << "  --" << name;
    if (!opt.is_flag) os << "=<" << opt.default_value << ">";
    os << "\n      " << opt.help << "\n";
  }
  os << "  --help\n      print this message\n";
  return os.str();
}

}  // namespace wdm::util
