#include "util/rng.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace wdm::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_stream_seed(std::uint64_t master_seed,
                                 std::uint64_t label) noexcept {
  // Two splitmix64 rounds over (seed, label): the label lands in a distinct
  // 2^64-strided region of the splitmix sequence, so distinct labels give
  // decorrelated seeds even for adjacent master seeds.
  std::uint64_t state = master_seed;
  std::uint64_t mixed = splitmix64(state) ^ (0xd1342543de82ef95ULL * (label + 1));
  return splitmix64(mixed);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int s) noexcept {
  return (x << s) | (x >> (64 - s));
}

// GCC/Clang 128-bit type, shielded from -Wpedantic.
__extension__ using u128 = unsigned __int128;
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro must not start from the all-zero state; splitmix64 never produces
  // four consecutive zeros, but guard anyway for defence in depth.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ULL;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng::State Rng::state() const noexcept {
  State out;
  for (int i = 0; i < 4; ++i) out.s[i] = s_[i];
  out.split_counter = split_counter_;
  return out;
}

void Rng::restore(const State& state) noexcept {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  split_counter_ = state.split_counter;
  // Re-apply the constructor's all-zero guard: a hand-rolled state must not
  // be able to park the generator on the xoshiro fixed point.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ULL;
}

Rng Rng::split() noexcept {
  // Mix a fresh draw with a per-parent counter so repeated splits yield
  // distinct, decorrelated children even if the parent state were reused.
  std::uint64_t seed = next() ^ (0xd1342543de82ef95ULL * ++split_counter_);
  return Rng{splitmix64(seed)};
}

std::uint64_t Rng::uniform_below(std::uint64_t n) noexcept {
  WDM_DCHECK(n > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next();
  u128 m = static_cast<u128>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next();
      m = static_cast<u128>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  WDM_DCHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_below(span));
}

double Rng::uniform01() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::uint64_t Rng::geometric(double p) noexcept {
  WDM_DCHECK(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 1;
  // Inversion: ceil(ln(U) / ln(1-p)), support {1, 2, ...}.
  const double u = 1.0 - uniform01();  // in (0, 1]
  const double g = std::ceil(std::log(u) / std::log1p(-p));
  return g < 1.0 ? 1 : static_cast<std::uint64_t>(g);
}

ZipfSampler::ZipfSampler(std::size_t n, double alpha) : alpha_(alpha) {
  WDM_CHECK_MSG(n > 0, "ZipfSampler needs a nonempty support");
  WDM_CHECK_MSG(alpha >= 0.0, "Zipf exponent must be nonnegative");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace wdm::util
