#include "util/threadpool.hpp"

#include <algorithm>
#include <exception>

#include "util/check.hpp"

namespace wdm::util {

std::vector<std::pair<std::size_t, std::size_t>> split_ranges(
    std::size_t begin, std::size_t end, std::size_t max_parts) {
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  if (begin >= end || max_parts == 0) return ranges;
  const std::size_t n = end - begin;
  const std::size_t parts = std::min(n, max_parts);
  const std::size_t base = n / parts;
  const std::size_t extra = n % parts;
  ranges.reserve(parts);
  std::size_t lo = begin;
  for (std::size_t c = 0; c < parts; ++c) {
    const std::size_t hi = lo + base + (c < extra ? 1 : 0);
    ranges.emplace_back(lo, hi);
    lo = hi;
  }
  return ranges;
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    const std::lock_guard lock(mutex_);
    WDM_CHECK_MSG(!stopping_, "submit() on a stopping ThreadPool");
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  // Chunk so each worker gets a contiguous range: per-index dispatch through
  // a shared cursor would pay a contended fetch_add per output fiber,
  // dwarfing an O(k) schedule.
  const auto chunks = split_ranges(begin, end, workers_.size());
  if (chunks.size() == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(chunks.size());
  for (const auto& [lo, hi] : chunks) {
    futures.push_back(submit([&fn, lo, hi] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

}  // namespace wdm::util
