#include "util/threadpool.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/cpu_affinity.hpp"

namespace wdm::util {

namespace {
// 0 everywhere except on pool workers, which set it once at spawn.
thread_local std::uint16_t t_worker_index = 0;
}  // namespace

std::uint16_t ThreadPool::worker_index() noexcept { return t_worker_index; }

std::size_t ThreadPool::clamped_partition_threads(std::size_t requested,
                                                  std::size_t partitions,
                                                  std::size_t total_budget) {
  if (partitions == 0) partitions = 1;
  const std::size_t budget =
      total_budget > 0 ? total_budget : available_cpus();
  const std::size_t per_partition = std::max<std::size_t>(1, budget / partitions);
  if (requested == 0) return per_partition;
  return std::min(requested, per_partition);
}

std::vector<std::pair<std::size_t, std::size_t>> split_ranges(
    std::size_t begin, std::size_t end, std::size_t max_parts) {
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  if (begin >= end || max_parts == 0) return ranges;
  const std::size_t n = end - begin;
  const std::size_t parts = std::min(n, max_parts);
  const std::size_t base = n / parts;
  const std::size_t extra = n % parts;
  ranges.reserve(parts);
  std::size_t lo = begin;
  for (std::size_t c = 0; c < parts; ++c) {
    const std::size_t hi = lo + base + (c < extra ? 1 : 0);
    ranges.emplace_back(lo, hi);
    lo = hi;
  }
  return ranges;
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back(
        [this, i] { worker_loop(static_cast<std::uint16_t>(i + 1)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    const std::lock_guard lock(mutex_);
    WDM_CHECK_MSG(!stopping_, "submit() on a stopping ThreadPool");
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::work_on(ParallelJob& job) {
  // Chunk c is the c-th split_ranges(begin, begin + total, n_chunks) range:
  // earlier chunks take the remainder, computed arithmetically so claiming a
  // chunk is one relaxed fetch_add and no shared state.
  const std::size_t base = job.total / job.n_chunks;
  const std::size_t extra = job.total % job.n_chunks;
  for (;;) {
    const std::size_t c = job.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.n_chunks) return;
    const std::size_t lo = job.begin + c * base + std::min(c, extra);
    const std::size_t hi = lo + base + (c < extra ? 1 : 0);
    try {
      job.invoke(job.ctx, lo, hi);
    } catch (...) {
      const std::lock_guard lock(mutex_);
      if (!job.error) job.error = std::current_exception();
    }
  }
}

void ThreadPool::run_parallel_job(ParallelJob& job) {
  {
    std::unique_lock lock(mutex_);
    if (job_ != nullptr || stopping_) {
      // The parallel slot is taken (concurrent or nested parallel_for on the
      // same pool): run the whole range inline — correct, never deadlocks.
      lock.unlock();
      job.invoke(job.ctx, job.begin, job.begin + job.total);
      return;
    }
    job_ = &job;
  }
  cv_.notify_all();
  work_on(job);  // the caller claims chunks alongside the workers

  std::unique_lock lock(mutex_);
  // The ticket is exhausted (work_on returned), so unpublish the job: no new
  // worker may pick it up. A worker that drained the ticket first may have
  // already done this.
  if (job_ == &job) job_ = nullptr;
  done_cv_.wait(lock, [&job] { return job.refs == 0; });
  if (job.error) std::rethrow_exception(job.error);
}

void ThreadPool::worker_loop(std::uint16_t index) {
  t_worker_index = index;
  std::unique_lock lock(mutex_);
  for (;;) {
    cv_.wait(lock, [this] {
      return stopping_ || job_ != nullptr || !queue_.empty();
    });
    if (job_ != nullptr) {
      ParallelJob* job = job_;
      job->refs += 1;
      lock.unlock();
      work_on(*job);
      lock.lock();
      // Ticket drained: unpublish so no worker re-claims it, then drop the
      // reference; the last thread out wakes the waiting caller.
      if (job_ == job) job_ = nullptr;
      job->refs -= 1;
      if (job->refs == 0) done_cv_.notify_all();
      continue;
    }
    if (!queue_.empty()) {
      std::packaged_task<void()> task = std::move(queue_.front());
      queue_.pop_front();
      lock.unlock();
      task();  // packaged_task captures exceptions into the future
      lock.lock();
      continue;
    }
    return;  // stopping_ and drained
  }
}

}  // namespace wdm::util
