#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace wdm::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  WDM_CHECK_MSG(!headers_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  WDM_CHECK_MSG(cells.size() == headers_.size(),
                "row width must match the header");
  rows_.push_back(std::move(cells));
}

const std::string& Table::at(std::size_t row, std::size_t col) const {
  WDM_CHECK(row < rows_.size() && col < headers_.size());
  return rows_[row][col];
}

const std::string& Table::header(std::size_t col) const {
  WDM_CHECK(col < headers_.size());
  return headers_[col];
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c])) << row[c];
      os << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  emit(headers_);
  std::size_t rule = 0;
  for (const auto w : widths) rule += w + 2;
  os << std::string(rule > 2 ? rule - 2 : rule, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::print_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << csv_escape(row[c]) << (c + 1 == row.size() ? "\n" : ",");
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string cell(double v, int digits) {
  std::ostringstream os;
  os << std::setprecision(digits) << v;
  return os.str();
}

std::string cell_prob(double p) {
  std::ostringstream os;
  if (p != 0.0 && p < 1e-3) {
    os << std::scientific << std::setprecision(3) << p;
  } else {
    os << std::fixed << std::setprecision(5) << p;
  }
  return os.str();
}

}  // namespace wdm::util
