#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace wdm::util {

void RunningStats::add(double x) noexcept {
  n_ += 1;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const noexcept {
  if (n_ < 2) return 0.0;
  return 1.959964 * stddev() / std::sqrt(static_cast<double>(n_));
}

namespace {
constexpr double kZ95 = 1.959964;

double wilson_centre(double p, double n) noexcept {
  return (p + kZ95 * kZ95 / (2 * n)) / (1 + kZ95 * kZ95 / n);
}

double wilson_halfwidth(double p, double n) noexcept {
  return kZ95 / (1 + kZ95 * kZ95 / n) *
         std::sqrt(p * (1 - p) / n + kZ95 * kZ95 / (4 * n * n));
}
}  // namespace

double Proportion::wilson_low() const noexcept {
  if (n_ == 0) return 0.0;
  const auto n = static_cast<double>(n_);
  const double p = value();
  return std::max(0.0, wilson_centre(p, n) - wilson_halfwidth(p, n));
}

double Proportion::wilson_high() const noexcept {
  if (n_ == 0) return 1.0;
  const auto n = static_cast<double>(n_);
  const double p = value();
  return std::min(1.0, wilson_centre(p, n) + wilson_halfwidth(p, n));
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  WDM_CHECK_MSG(hi > lo, "histogram range must be nonempty");
  WDM_CHECK_MSG(bins > 0, "histogram needs at least one bin");
  counts_.assign(bins, 0);
}

void Histogram::add(double x) noexcept {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(frac * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += 1;
  total_ += 1;
}

void Histogram::merge(const Histogram& other) {
  WDM_CHECK_MSG(other.counts_.size() == counts_.size() && other.lo_ == lo_ &&
                    other.hi_ == hi_,
                "histogram layouts must match to merge");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

std::uint64_t Histogram::bin_count(std::size_t i) const {
  WDM_CHECK(i < counts_.size());
  return counts_[i];
}

double Histogram::bin_low(std::size_t i) const {
  WDM_CHECK(i < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t i) const {
  return bin_low(i) + (hi_ - lo_) / static_cast<double>(counts_.size());
}

double Histogram::quantile(double q) const {
  WDM_CHECK(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto c = static_cast<double>(counts_[i]);
    if (cum + c >= target) {
      const double within = c > 0 ? (target - cum) / c : 0.0;
      const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
      return bin_low(i) + within * width;
    }
    cum += c;
  }
  return hi_;
}

std::string Histogram::ascii(std::size_t width) const {
  std::uint64_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        static_cast<std::size_t>(static_cast<double>(counts_[i]) /
                                 static_cast<double>(peak) * static_cast<double>(width));
    os << '[' << bin_low(i) << ", " << bin_high(i) << ") "
       << std::string(bar, '#') << ' ' << counts_[i] << '\n';
  }
  return os.str();
}

double jain_fairness(const std::vector<double>& xs) noexcept {
  if (xs.empty()) return 1.0;
  double sum = 0.0, sumsq = 0.0;
  for (const double x : xs) {
    sum += x;
    sumsq += x * x;
  }
  if (sumsq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(xs.size()) * sumsq);
}

}  // namespace wdm::util
