// A vector with inline storage for small sizes (heap fallback above the
// inline capacity). Exists for the per-slot QoS accounting in SlotStats:
// the two per-class vectors used to be the last heap allocations of a warm
// Interconnect::step, and with realistic class counts (a handful) they fit
// inline — so a full step is now allocation-free (tests/test_zero_alloc.cpp
// asserts exactly 0).
//
// Restricted to trivially copyable element types, which keeps the inline /
// heap moves memcpy-cheap and the implementation small.
#pragma once

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <type_traits>

namespace wdm::util {

template <typename T, std::size_t InlineCap>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec is restricted to trivially copyable types");
  static_assert(InlineCap > 0, "inline capacity must be positive");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVec() noexcept = default;
  SmallVec(std::initializer_list<T> init) { assign(init.begin(), init.end()); }
  SmallVec(const SmallVec& other) { assign(other.begin(), other.end()); }
  SmallVec(SmallVec&& other) noexcept { steal(other); }
  ~SmallVec() { release(); }

  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) assign(other.begin(), other.end());
    return *this;
  }
  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      release();
      steal(other);
    }
    return *this;
  }
  SmallVec& operator=(std::initializer_list<T> init) {
    assign(init.begin(), init.end());
    return *this;
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  void clear() noexcept { size_ = 0; }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  T* begin() noexcept { return data_; }
  T* end() noexcept { return data_ + size_; }
  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + size_; }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

  void push_back(const T& value) {
    reserve_for(size_ + 1);
    data_[size_++] = value;
  }

  /// std::vector::resize semantics: new elements take `fill`.
  void resize(std::size_t n, const T& fill = T{}) {
    if (n > size_) {
      reserve_for(n);
      std::fill(data_ + size_, data_ + n, fill);
    }
    size_ = n;
  }

  friend bool operator==(const SmallVec& a, const SmallVec& b) noexcept {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator!=(const SmallVec& a, const SmallVec& b) noexcept {
    return !(a == b);
  }

 private:
  void assign(const T* first, const T* last) {
    const auto n = static_cast<std::size_t>(last - first);
    clear();
    reserve_for(n);
    std::copy(first, last, data_);
    size_ = n;
  }

  void reserve_for(std::size_t n) {
    if (n <= cap_) return;
    const std::size_t new_cap = std::max(n, cap_ * 2);
    T* heap = new T[new_cap];
    std::copy(data_, data_ + size_, heap);
    release();
    data_ = heap;
    cap_ = new_cap;
  }

  void release() noexcept {
    if (data_ != inline_) delete[] data_;
    data_ = inline_;
    cap_ = InlineCap;
  }

  /// Move: steal a heap buffer, copy an inline one. `other` is left empty.
  void steal(SmallVec& other) noexcept {
    if (other.data_ != other.inline_) {
      data_ = other.data_;
      cap_ = other.cap_;
      size_ = other.size_;
      other.data_ = other.inline_;
      other.cap_ = InlineCap;
      other.size_ = 0;
      return;
    }
    std::copy(other.begin(), other.end(), inline_);
    data_ = inline_;
    cap_ = InlineCap;
    size_ = other.size_;
    other.size_ = 0;
  }

  T inline_[InlineCap] = {};
  T* data_ = inline_;
  std::size_t cap_ = InlineCap;
  std::size_t size_ = 0;
};

}  // namespace wdm::util
