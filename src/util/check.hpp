// Checked-precondition macros used throughout the library.
//
// WDM_CHECK is always on: it guards API contracts (caller-supplied parameters,
// configuration sanity) and throws std::invalid_argument / std::logic_error so
// misuse is reported deterministically instead of corrupting a schedule.
// WDM_DCHECK compiles away in NDEBUG builds and guards internal invariants on
// hot paths (per-slot scheduling loops).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace wdm::util {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "WDM_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace wdm::util

#define WDM_CHECK(expr)                                                \
  do {                                                                 \
    if (!(expr)) ::wdm::util::check_failed(#expr, __FILE__, __LINE__, {}); \
  } while (0)

#define WDM_CHECK_MSG(expr, msg)                                       \
  do {                                                                 \
    if (!(expr)) ::wdm::util::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
#define WDM_DCHECK(expr) ((void)0)
#else
#define WDM_DCHECK(expr) WDM_CHECK(expr)
#endif
