// Portable CPU-affinity helper for the sharded fleet engine.
//
// A fleet pins each shard's worker group to a contiguous block of logical
// CPUs so a shard's scheduler threads, arenas, and availability plane stay
// on one cache/NUMA domain (the shard state is first-touched from the pinned
// driver thread, so page placement follows the pin on first-touch systems).
// Pinning is strictly a performance hint: every scheduling decision is
// identical with pinning on or off, which the fleet determinism tests
// enforce.
//
// On Linux this wraps pthread_setaffinity_np; elsewhere every call is a
// documented no-op that reports false, so callers degrade gracefully
// instead of carrying platform #ifdefs.
#pragma once

#include <cstddef>
#include <span>

namespace wdm::util {

/// Logical CPUs visible to this process, never 0. Prefers the current
/// affinity mask over hardware_concurrency() on Linux, so a fleet inside a
/// cpuset/container sizes itself to the CPUs it may actually use.
std::size_t available_cpus() noexcept;

/// True when pin_current_thread can actually pin on this platform.
bool cpu_affinity_supported() noexcept;

/// Restricts the calling thread to the given logical CPU ids (ids outside
/// [0, available system range) are ignored). Returns true when the mask was
/// applied; false on unsupported platforms, an empty/out-of-range set, or a
/// kernel refusal. Threads spawned afterwards by the calling thread inherit
/// the mask on Linux — the fleet relies on this to pin a shard's ThreadPool
/// workers by constructing the pool on the pinned driver thread.
bool pin_current_thread(std::span<const int> cpus) noexcept;

/// Convenience: pin to the contiguous block [first_cpu, first_cpu + count).
bool pin_current_thread_block(int first_cpu, int count) noexcept;

}  // namespace wdm::util
