// Monotonic wall-clock timing for the custom bench harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace wdm::util {

/// Nanoseconds from the steady clock.
inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Stopwatch: created running, read with elapsed_*.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(now_ns()) {}
  void reset() noexcept { start_ = now_ns(); }
  std::uint64_t elapsed_ns() const noexcept { return now_ns() - start_; }
  double elapsed_us() const noexcept {
    return static_cast<double>(elapsed_ns()) / 1e3;
  }
  double elapsed_ms() const noexcept {
    return static_cast<double>(elapsed_ns()) / 1e6;
  }
  double elapsed_s() const noexcept {
    return static_cast<double>(elapsed_ns()) / 1e9;
  }

 private:
  std::uint64_t start_;
};

}  // namespace wdm::util
