// Online statistics used by the simulator and the benchmark harness.
//
// All accumulators are single-pass (Welford) so multi-million-slot simulations
// keep O(1) memory, and mergeable so per-thread partials from the distributed
// scheduler can be combined without synchronisation during the run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace wdm::util {

/// Welford mean/variance accumulator with min/max tracking.
class RunningStats {
 public:
  void add(double x) noexcept;
  /// Merges another accumulator (Chan et al. parallel variance update).
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }
  /// Half-width of the normal-approximation 95% confidence interval.
  double ci95_halfwidth() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Counting accumulator for a binomial proportion (e.g. packet-loss rate).
class Proportion {
 public:
  void add(bool success) noexcept { n_ += 1; k_ += success ? 1u : 0u; }
  void add(std::uint64_t successes, std::uint64_t trials) noexcept {
    k_ += successes;
    n_ += trials;
  }
  void merge(const Proportion& other) noexcept { k_ += other.k_; n_ += other.n_; }

  std::uint64_t successes() const noexcept { return k_; }
  std::uint64_t trials() const noexcept { return n_; }
  double value() const noexcept {
    return n_ ? static_cast<double>(k_) / static_cast<double>(n_) : 0.0;
  }
  /// Wilson score 95% interval — stays inside [0,1] even for rare events,
  /// which matters for loss probabilities down at 1e-5.
  double wilson_low() const noexcept;
  double wilson_high() const noexcept;

 private:
  std::uint64_t k_ = 0;
  std::uint64_t n_ = 0;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples are clamped into
/// the first/last bin so totals are conserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  void merge(const Histogram& other);

  std::size_t bins() const noexcept { return counts_.size(); }
  std::uint64_t bin_count(std::size_t i) const;
  std::uint64_t total() const noexcept { return total_; }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const;
  /// Linear-interpolated quantile, q in [0,1].
  double quantile(double q) const;
  std::string ascii(std::size_t width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Jain's fairness index of a set of nonnegative allocations:
/// (sum x)^2 / (n * sum x^2); 1.0 = perfectly fair. Empty input yields 1.0.
double jain_fairness(const std::vector<double>& xs) noexcept;

}  // namespace wdm::util
