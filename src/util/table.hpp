// Plain-text and CSV table output for the benchmark harness.
//
// Every bench binary regenerates one paper experiment as rows of a table; this
// keeps the formatting consistent (aligned console output for humans, CSV for
// plotting) without dragging in a serialisation library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <type_traits>
#include <vector>

namespace wdm::util {

/// Column-aligned table with a header row. Cells are preformatted strings;
/// the `cell()` helpers format numerics with sensible defaults.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t columns() const noexcept { return headers_.size(); }
  const std::string& at(std::size_t row, std::size_t col) const;
  /// Header of column `col` (bench JSON serialisation keys rows by these).
  const std::string& header(std::size_t col) const;

  /// Renders with space-padded, right-aligned columns.
  void print(std::ostream& os) const;
  /// Renders as RFC-4180-ish CSV (quotes cells containing commas/quotes).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant digits.
std::string cell(double v, int digits = 4);

/// Formats any integer type.
template <typename T>
  requires std::is_integral_v<T>
std::string cell(T v) {
  return std::to_string(v);
}

/// Formats a probability in scientific notation when small (loss rates).
std::string cell_prob(double p);

}  // namespace wdm::util
