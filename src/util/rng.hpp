// Deterministic, seedable random number generation for simulations.
//
// The simulator needs (1) reproducible streams — the same seed must replay the
// same experiment bit-for-bit across runs and platforms, and (2) cheap
// independent streams for parallel per-output-fiber scheduling. xoshiro256**
// (Blackman & Vigna) with splitmix64 seeding provides both; `split()` derives a
// statistically independent child stream, so each output fiber / traffic source
// can own its own generator without locking.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace wdm::util {

/// splitmix64 step: used for seeding and for deriving child streams.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Seed of an independent *labeled* substream of `master_seed`. Unlike
/// sequential `seeder.next()` draws, labeled substreams are position-free:
/// adding or removing one consumer (e.g. enabling fault injection) cannot
/// shift the seeds of the others, so the traffic and scheduling streams of a
/// given master seed replay bit-for-bit with faults on or off.
std::uint64_t derive_stream_seed(std::uint64_t master_seed,
                                 std::uint64_t label) noexcept;

/// xoshiro256** pseudo-random generator. Satisfies the essentials of
/// UniformRandomBitGenerator so it can also feed <random> adaptors.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds all 256 bits of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next 64 uniformly random bits.
  std::uint64_t operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Derives an independent child generator (counter-based splitting).
  Rng split() noexcept;

  /// Raw generator state for checkpoint/replay: the four xoshiro words plus
  /// the split counter. restore() resumes the stream at the exact position
  /// state() captured, so a checkpointed simulation replays bit-for-bit.
  struct State {
    std::uint64_t s[4] = {};
    std::uint64_t split_counter = 0;
  };
  State state() const noexcept;
  void restore(const State& state) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform in [0, n). Requires n > 0. Unbiased (Lemire rejection).
  std::uint64_t uniform_below(std::uint64_t n) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Geometric: number of slots a connection holds, support {1, 2, ...},
  /// mean 1/p. Requires 0 < p <= 1.
  std::uint64_t geometric(double p) noexcept;

  /// Fisher–Yates shuffle. The draw sequence depends only on the length, so
  /// shuffling a vector or a span of the same size replays identically.
  template <typename T>
  void shuffle(std::span<T> v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    shuffle(std::span<T>(v));
  }

 private:
  std::uint64_t s_[4];
  std::uint64_t split_counter_ = 0;
};

/// Zipf(α) sampler over {0, ..., n-1} with precomputed inverse CDF; used for
/// hotspot destination traffic. α = 0 degenerates to the uniform distribution.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double alpha);

  std::size_t sample(Rng& rng) const noexcept;
  std::size_t size() const noexcept { return cdf_.size(); }
  double alpha() const noexcept { return alpha_; }

 private:
  std::vector<double> cdf_;  // cdf_[i] = P(X <= i)
  double alpha_;
};

}  // namespace wdm::util
