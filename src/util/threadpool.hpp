// Fixed-size worker pool used by the distributed scheduler.
//
// The paper's key observation is that per-output-fiber schedules are
// independent, so the N schedules of a slot can run concurrently — on separate
// hardware units in a switch, or on worker threads in this reproduction. The
// pool is deliberately simple: a mutex-protected deque is plenty for N tasks
// per time slot, and keeps the code auditable.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace wdm::util {

/// Splits [begin, end) into at most `max_parts` contiguous non-empty
/// [lo, hi) ranges that cover it exactly, in order; earlier ranges take the
/// remainder. This is the chunking parallel_for dispatches — exposed so tests
/// can assert each chunk runs as one task.
std::vector<std::pair<std::size_t, std::size_t>> split_ranges(
    std::size_t begin, std::size_t end, std::size_t max_parts);

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; the returned future rethrows any task exception.
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(i) for i in [begin, end) across the pool and waits for all of
  /// them. The range is split into split_ranges(begin, end, size()) contiguous
  /// chunks, one task each, so workers never contend on a shared index; a
  /// single-chunk range runs inline on the caller. Exceptions propagate (the
  /// first one encountered is rethrown).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace wdm::util
