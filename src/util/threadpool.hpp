// Fixed-size worker pool used by the distributed scheduler.
//
// The paper's key observation is that per-output-fiber schedules are
// independent, so the N schedules of a slot can run concurrently — on separate
// hardware units in a switch, or on worker threads in this reproduction.
//
// Two dispatch paths:
//  * submit() — general one-off tasks through a mutex-protected deque with a
//    future per task. Simple and auditable; not on the per-slot hot path.
//  * parallel_for() — the per-slot fan-out. A slot dispatches N fiber
//    schedules thousands of times per second, so this path allocates nothing:
//    the loop body stays a stack-held callable (no std::function, no
//    packaged_task/future pair), workers claim contiguous chunks off an
//    atomic ticket, and ranges below a small threshold run inline on the
//    caller. The chunking is split_ranges(begin, end, size()), same as the
//    deque path always used, so each chunk runs contiguously on one thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace wdm::util {

/// Splits [begin, end) into at most `max_parts` contiguous non-empty
/// [lo, hi) ranges that cover it exactly, in order; earlier ranges take the
/// remainder. This is the chunking parallel_for dispatches — exposed so tests
/// can assert each chunk runs as one task.
std::vector<std::pair<std::size_t, std::size_t>> split_ranges(
    std::size_t begin, std::size_t end, std::size_t max_parts);

class ThreadPool {
 public:
  /// Ranges of at most this many indices run inline on the caller: waking
  /// workers costs more than a handful of O(k) fiber schedules.
  static constexpr std::size_t kInlineThreshold = 8;

  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  /// Thread-group size for one of `partitions` equal slices of the machine —
  /// the oversubscription clamp the fleet applies per shard. The returned
  /// count *includes* the partition's driving thread (a parallel_for caller
  /// claims chunks alongside the workers), so a partition of size T wants a
  /// pool of T - 1 workers, and T == 1 wants no pool at all. `total_budget`
  /// is the thread budget shared by all partitions; 0 means the CPUs
  /// available to this process. Never returns 0: every partition may use at
  /// least its own driving thread, even when partitions > budget (the
  /// drivers themselves then timeshare, which is the caller's explicit
  /// choice of partition count, not hidden pool oversubscription).
  static std::size_t clamped_partition_threads(std::size_t requested,
                                               std::size_t partitions,
                                               std::size_t total_budget = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; the returned future rethrows any task exception.
  std::future<void> submit(std::function<void()> task);

  /// 1-based index of the pool worker the calling thread is, or 0 for any
  /// thread that is not a pool worker (including a parallel_for caller
  /// claiming chunks inline). Thread-local, so reading it is free; telemetry
  /// uses it to attribute per-fiber spans to the thread that ran them.
  static std::uint16_t worker_index() noexcept;

  /// Runs fn(i) for i in [begin, end) across the pool and waits for all of
  /// them. The range is split into split_ranges(begin, end, size()) contiguous
  /// chunks claimed off an atomic ticket by the workers *and the caller*, so
  /// workers never contend on a shared index and the dispatch performs no
  /// heap allocation. Ranges of at most kInlineThreshold indices (or a pool
  /// with one worker, or a pool whose parallel slot is already taken by a
  /// concurrent/nested parallel_for) run inline on the caller. Exceptions
  /// propagate (the first one encountered is rethrown).
  template <typename Fn>
  void parallel_for(std::size_t begin, std::size_t end, Fn&& fn) {
    if (begin >= end) return;
    const std::size_t n = end - begin;
    if (n <= kInlineThreshold || workers_.size() <= 1) {
      for (std::size_t i = begin; i < end; ++i) fn(i);
      return;
    }
    using F = std::remove_reference_t<Fn>;
    ParallelJob job;
    job.invoke = [](void* ctx, std::size_t lo, std::size_t hi) {
      F& f = *static_cast<F*>(ctx);
      for (std::size_t i = lo; i < hi; ++i) f(i);
    };
    job.ctx = const_cast<void*>(static_cast<const void*>(std::addressof(fn)));
    job.begin = begin;
    job.total = n;
    job.n_chunks = std::min(n, workers_.size());
    run_parallel_job(job);
  }

 private:
  /// One parallel_for dispatch, held on the caller's stack for its duration.
  /// `next` is the chunk ticket; chunk c covers the split_ranges chunk of the
  /// same index. `refs` (guarded by mutex_) counts threads still touching the
  /// job, so the caller knows when the stack frame may be retired.
  struct ParallelJob {
    void (*invoke)(void* ctx, std::size_t lo, std::size_t hi) = nullptr;
    void* ctx = nullptr;
    std::size_t begin = 0;
    std::size_t total = 0;
    std::size_t n_chunks = 0;
    std::atomic<std::size_t> next{0};
    std::size_t refs = 0;              // guarded by mutex_
    std::exception_ptr error;          // first failure, guarded by mutex_
  };

  void run_parallel_job(ParallelJob& job);
  /// Claims and runs chunks until the ticket is exhausted.
  void work_on(ParallelJob& job);
  void worker_loop(std::uint16_t index);

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  ParallelJob* job_ = nullptr;  // active parallel_for, guarded by mutex_
  std::mutex mutex_;
  std::condition_variable cv_;       // wakes workers (queue, job, stop)
  std::condition_variable done_cv_;  // wakes parallel_for callers (refs == 0)
  bool stopping_ = false;
};

}  // namespace wdm::util
