#include "util/cpu_affinity.hpp"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace wdm::util {

std::size_t available_cpus() noexcept {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    const int n = CPU_COUNT(&set);
    if (n > 0) return static_cast<std::size_t>(n);
  }
#endif
  const unsigned n = std::thread::hardware_concurrency();
  return n > 0 ? n : 1;
}

bool cpu_affinity_supported() noexcept {
#if defined(__linux__)
  return true;
#else
  return false;
#endif
}

bool pin_current_thread(std::span<const int> cpus) noexcept {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  bool any = false;
  for (const int cpu : cpus) {
    if (cpu < 0 || cpu >= CPU_SETSIZE) continue;
    CPU_SET(cpu, &set);
    any = true;
  }
  if (!any) return false;
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpus;
  return false;
#endif
}

bool pin_current_thread_block(int first_cpu, int count) noexcept {
  if (count <= 0) return false;
  // Small fixed stack buffer: pinning happens once per shard at startup, and
  // a shard block wider than this is clamped to its leading CPUs.
  constexpr int kMaxBlock = 256;
  int cpus[kMaxBlock];
  const int n = count < kMaxBlock ? count : kMaxBlock;
  for (int i = 0; i < n; ++i) cpus[i] = first_cpu + i;
  return pin_current_thread(std::span<const int>(cpus, static_cast<std::size_t>(n)));
}

}  // namespace wdm::util
