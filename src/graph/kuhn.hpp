// Kuhn's augmenting-path maximum matching — a second, independent oracle.
//
// O(V * E), slower than Hopcroft–Karp but with an entirely different control
// flow; the test suite cross-checks both oracles against each other so a bug
// in one of them cannot silently validate the paper's schedulers.
#pragma once

#include "graph/bipartite_graph.hpp"
#include "graph/matching.hpp"

namespace wdm::graph {

/// Returns a maximum matching of `g` via repeated DFS augmentation.
Matching kuhn_matching(const BipartiteGraph& g);

}  // namespace wdm::graph
