#include "graph/hopcroft_karp.hpp"

#include <limits>
#include <vector>

namespace wdm::graph {

namespace {

constexpr std::int32_t kInf = std::numeric_limits<std::int32_t>::max();

/// Scratch state reused across phases of one invocation.
struct HkState {
  const BipartiteGraph& g;
  Matching& m;
  std::vector<std::int32_t> dist;        // BFS layer of each left vertex
  std::vector<VertexId> bfs_queue;

  explicit HkState(const BipartiteGraph& graph, Matching& matching)
      : g(graph), m(matching) {
    dist.resize(static_cast<std::size_t>(g.n_left()));
    bfs_queue.reserve(static_cast<std::size_t>(g.n_left()));
  }

  /// Layers free left vertices at distance 0 and alternates matched/unmatched
  /// edges; returns true if some free right vertex is reachable.
  bool bfs() {
    bfs_queue.clear();
    for (VertexId a = 0; a < g.n_left(); ++a) {
      if (!m.left_matched(a)) {
        dist[static_cast<std::size_t>(a)] = 0;
        bfs_queue.push_back(a);
      } else {
        dist[static_cast<std::size_t>(a)] = kInf;
      }
    }
    bool found_free_right = false;
    for (std::size_t head = 0; head < bfs_queue.size(); ++head) {
      const VertexId a = bfs_queue[head];
      for (const VertexId b : g.neighbors(a)) {
        const VertexId a2 = m.left_of(b);
        if (a2 == kNoVertex) {
          found_free_right = true;
        } else if (dist[static_cast<std::size_t>(a2)] == kInf) {
          dist[static_cast<std::size_t>(a2)] =
              dist[static_cast<std::size_t>(a)] + 1;
          bfs_queue.push_back(a2);
        }
      }
    }
    return found_free_right;
  }

  /// Finds one augmenting path from `a` along the BFS layering.
  bool dfs(VertexId a) {
    for (const VertexId b : g.neighbors(a)) {
      const VertexId a2 = m.left_of(b);
      if (a2 == kNoVertex ||
          (dist[static_cast<std::size_t>(a2)] ==
               dist[static_cast<std::size_t>(a)] + 1 &&
           dfs(a2))) {
        // b is free now: either it always was, or the successful recursive
        // call moved a2 (its former partner) to a later edge of the path.
        m.unmatch_left(a);  // a itself is matched when reached recursively
        m.match(a, b);
        return true;
      }
    }
    dist[static_cast<std::size_t>(a)] = kInf;  // dead end: prune for this phase
    return false;
  }
};

}  // namespace

Matching hopcroft_karp(const BipartiteGraph& g) {
  Matching m(g.n_left(), g.n_right());
  HkState state(g, m);
  while (state.bfs()) {
    for (VertexId a = 0; a < g.n_left(); ++a) {
      if (!m.left_matched(a)) state.dfs(a);
    }
  }
  return m;
}

}  // namespace wdm::graph
