#include "graph/bipartite_graph.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace wdm::graph {

BipartiteGraph::BipartiteGraph(VertexId n_left, VertexId n_right)
    : n_right_(n_right) {
  WDM_CHECK_MSG(n_left >= 0 && n_right >= 0, "vertex counts must be nonnegative");
  adj_.resize(static_cast<std::size_t>(n_left));
}

void BipartiteGraph::add_edge(VertexId a, VertexId b) {
  WDM_CHECK_MSG(a >= 0 && a < n_left(), "left vertex out of range");
  WDM_CHECK_MSG(b >= 0 && b < n_right_, "right vertex out of range");
  adj_[static_cast<std::size_t>(a)].push_back(b);
  n_edges_ += 1;
}

const std::vector<VertexId>& BipartiteGraph::neighbors(VertexId a) const {
  WDM_CHECK_MSG(a >= 0 && a < n_left(), "left vertex out of range");
  return adj_[static_cast<std::size_t>(a)];
}

bool BipartiteGraph::has_edge(VertexId a, VertexId b) const {
  const auto& nb = neighbors(a);
  return std::find(nb.begin(), nb.end(), b) != nb.end();
}

}  // namespace wdm::graph
