#include "graph/kuhn.hpp"

#include <vector>

namespace wdm::graph {

namespace {

bool try_augment(const BipartiteGraph& g, Matching& m, VertexId a,
                 std::vector<char>& visited_right) {
  for (const VertexId b : g.neighbors(a)) {
    if (visited_right[static_cast<std::size_t>(b)]) continue;
    visited_right[static_cast<std::size_t>(b)] = 1;
    const VertexId a2 = m.left_of(b);
    if (a2 == kNoVertex || try_augment(g, m, a2, visited_right)) {
      // b is free now: a successful recursive call re-matched a2 elsewhere.
      m.unmatch_left(a);  // a itself is matched when reached recursively
      m.match(a, b);
      return true;
    }
  }
  return false;
}

}  // namespace

Matching kuhn_matching(const BipartiteGraph& g) {
  Matching m(g.n_left(), g.n_right());
  std::vector<char> visited_right;
  for (VertexId a = 0; a < g.n_left(); ++a) {
    visited_right.assign(static_cast<std::size_t>(g.n_right()), 0);
    try_augment(g, m, a, visited_right);
  }
  return m;
}

}  // namespace wdm::graph
