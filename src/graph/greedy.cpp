#include "graph/greedy.hpp"

#include <numeric>
#include <vector>

namespace wdm::graph {

namespace {

Matching greedy_in_order(const BipartiteGraph& g,
                         const std::vector<VertexId>& order) {
  Matching m(g.n_left(), g.n_right());
  for (const VertexId a : order) {
    for (const VertexId b : g.neighbors(a)) {
      if (!m.right_matched(b)) {
        m.match(a, b);
        break;
      }
    }
  }
  return m;
}

}  // namespace

Matching greedy_maximal_matching(const BipartiteGraph& g) {
  std::vector<VertexId> order(static_cast<std::size_t>(g.n_left()));
  std::iota(order.begin(), order.end(), 0);
  return greedy_in_order(g, order);
}

Matching greedy_maximal_matching(const BipartiteGraph& g, util::Rng& rng) {
  std::vector<VertexId> order(static_cast<std::size_t>(g.n_left()));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  return greedy_in_order(g, order);
}

}  // namespace wdm::graph
