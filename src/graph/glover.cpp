#include "graph/glover.hpp"

#include <queue>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace wdm::graph {

Matching glover_maximum_matching(const ConvexBipartiteGraph& g) {
  Matching m(g.n_left(), g.n_right());

  // Bucket left vertices by BEGIN so each is pushed exactly once.
  std::vector<std::vector<VertexId>> by_begin(
      static_cast<std::size_t>(g.n_right()));
  for (VertexId a = 0; a < g.n_left(); ++a) {
    const auto& iv = g.interval(a);
    if (!iv.empty()) by_begin[static_cast<std::size_t>(iv.begin)].push_back(a);
  }

  // Min-heap of (END, vertex): Glover's rule picks the adjacent unmatched
  // vertex with the smallest END value.
  using Entry = std::pair<VertexId, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;

  for (VertexId b = 0; b < g.n_right(); ++b) {
    for (const VertexId a : by_begin[static_cast<std::size_t>(b)]) {
      heap.emplace(g.interval(a).end, a);
    }
    // Vertices whose interval already ended can never be matched later.
    while (!heap.empty() && heap.top().first < b) heap.pop();
    if (!heap.empty()) {
      const VertexId a = heap.top().second;
      heap.pop();
      WDM_DCHECK(g.interval(a).contains(b));
      m.match(a, b);
    }
  }
  return m;
}

Matching staircase_first_available(const ConvexBipartiteGraph& g) {
  WDM_CHECK_MSG(g.is_staircase(),
                "First Available requires a staircase convex graph");
  Matching m(g.n_left(), g.n_right());

  VertexId a = 0;
  const VertexId n_left = g.n_left();
  for (VertexId b = 0; b < g.n_right(); ++b) {
    // Skip vertices that can never be matched again: empty adjacency, or an
    // interval that ended before b (END values only grow down the list).
    while (a < n_left &&
           (g.interval(a).empty() || g.interval(a).end < b)) {
      ++a;
    }
    if (a == n_left) break;
    // `a` is the first unmatched left vertex; it is adjacent to b iff its
    // interval has started. If not, no unmatched vertex is adjacent to b.
    if (g.interval(a).begin <= b) {
      m.match(a, b);
      ++a;
    }
  }
  return m;
}

}  // namespace wdm::graph
