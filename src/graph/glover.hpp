// Glover's algorithm (paper Table 1) and the staircase First Available rule.
//
// Glover's algorithm finds a maximum matching in any convex bipartite graph:
// scan right vertices in order and match each to the adjacent unmatched left
// vertex whose interval ENDs earliest. With a binary heap this runs in
// O((L + k) log L) for L left and k right vertices.
//
// When the graph is additionally staircase (nondecreasing BEGIN and END —
// which every non-circular request graph is), the min-END vertex is simply
// the first unmatched adjacent vertex, giving the paper's First Available
// Algorithm (Table 2) in O(L + k) with no heap. The O(k) request-vector form
// used by the actual scheduler lives in src/core/first_available.*.
#pragma once

#include "graph/convex.hpp"
#include "graph/matching.hpp"

namespace wdm::graph {

/// Maximum matching in a convex bipartite graph (Table 1).
Matching glover_maximum_matching(const ConvexBipartiteGraph& g);

/// First Available rule (Table 2) on a *staircase* convex graph.
/// Precondition: g.is_staircase(); checked.
Matching staircase_first_available(const ConvexBipartiteGraph& g);

}  // namespace wdm::graph
