// Random instance generators for property tests and microbenchmarks.
#pragma once

#include "graph/bipartite_graph.hpp"
#include "graph/convex.hpp"
#include "util/rng.hpp"

namespace wdm::graph {

/// Erdős–Rényi bipartite graph: each of the n_left * n_right edges present
/// independently with probability p.
BipartiteGraph random_bipartite(util::Rng& rng, VertexId n_left,
                                VertexId n_right, double p);

/// Random convex graph: each left vertex gets an independent interval with
/// width in [1, max_width]; `empty_prob` of them are isolated.
ConvexBipartiteGraph random_convex(util::Rng& rng, VertexId n_left,
                                   VertexId n_right, VertexId max_width,
                                   double empty_prob = 0.0);

/// Random *staircase* convex graph: BEGIN and END nondecreasing in left
/// order, as in request graphs of non-circular conversion.
ConvexBipartiteGraph random_staircase(util::Rng& rng, VertexId n_left,
                                      VertexId n_right, VertexId max_width);

}  // namespace wdm::graph
