#include "graph/mincost_matching.hpp"

#include <deque>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace wdm::graph {

namespace {

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;

/// One SPFA pass over the residual graph of the current matching.
/// Node ids: left a and right b kept in separate distance arrays; paths
/// alternate unmatched (left->right, +cost) and matched (right->left, -cost)
/// edges. The SSP invariant (no negative residual cycles) guarantees
/// termination and per-cardinality optimality.
struct Spfa {
  const BipartiteGraph& g;
  const EdgeCost& cost;
  const Matching& m;
  std::vector<std::int64_t> dist_left;
  std::vector<std::int64_t> dist_right;
  std::vector<VertexId> parent_left_of_right;  // left vertex that reached b
  std::vector<VertexId> parent_right_of_left;  // matched edge that reached a

  Spfa(const BipartiteGraph& graph, const EdgeCost& c, const Matching& match)
      : g(graph), cost(c), m(match) {
    dist_left.assign(static_cast<std::size_t>(g.n_left()), kInf);
    dist_right.assign(static_cast<std::size_t>(g.n_right()), kInf);
    parent_left_of_right.assign(static_cast<std::size_t>(g.n_right()),
                                kNoVertex);
    parent_right_of_left.assign(static_cast<std::size_t>(g.n_left()),
                                kNoVertex);
  }

  /// Returns the cheapest-reachable free right vertex, or kNoVertex.
  VertexId run() {
    std::deque<VertexId> queue;  // left vertices only
    std::vector<char> in_queue(static_cast<std::size_t>(g.n_left()), 0);
    for (VertexId a = 0; a < g.n_left(); ++a) {
      if (!m.left_matched(a)) {
        dist_left[static_cast<std::size_t>(a)] = 0;
        queue.push_back(a);
        in_queue[static_cast<std::size_t>(a)] = 1;
      }
    }
    while (!queue.empty()) {
      const VertexId a = queue.front();
      queue.pop_front();
      in_queue[static_cast<std::size_t>(a)] = 0;
      const std::int64_t da = dist_left[static_cast<std::size_t>(a)];
      for (const VertexId b : g.neighbors(a)) {
        if (m.right_of(a) == b) continue;  // matched edges run right->left
        const std::int32_t c = cost(a, b);
        WDM_DCHECK(c >= 0);
        const std::int64_t db = da + c;
        if (db >= dist_right[static_cast<std::size_t>(b)]) continue;
        dist_right[static_cast<std::size_t>(b)] = db;
        parent_left_of_right[static_cast<std::size_t>(b)] = a;
        // Traverse b's matched reverse edge, if any.
        const VertexId a2 = m.left_of(b);
        if (a2 == kNoVertex) continue;
        const std::int64_t da2 = db - cost(a2, b);
        if (da2 < dist_left[static_cast<std::size_t>(a2)]) {
          dist_left[static_cast<std::size_t>(a2)] = da2;
          parent_right_of_left[static_cast<std::size_t>(a2)] = b;
          if (!in_queue[static_cast<std::size_t>(a2)]) {
            queue.push_back(a2);
            in_queue[static_cast<std::size_t>(a2)] = 1;
          }
        }
      }
    }
    VertexId best = kNoVertex;
    std::int64_t best_dist = kInf;
    for (VertexId b = 0; b < g.n_right(); ++b) {
      if (m.right_matched(b)) continue;
      if (dist_right[static_cast<std::size_t>(b)] < best_dist) {
        best_dist = dist_right[static_cast<std::size_t>(b)];
        best = b;
      }
    }
    return best;
  }
};

/// Shared SSP driver: augments along cheapest paths while the budget allows.
CostedMatching ssp_matching(const BipartiteGraph& g, const EdgeCost& cost,
                            std::int64_t budget) {
  CostedMatching out{Matching(g.n_left(), g.n_right()), 0};
  Matching& m = out.matching;

  for (;;) {
    Spfa spfa(g, cost, m);
    const VertexId end = spfa.run();
    if (end == kNoVertex) break;  // matching is maximum
    const std::int64_t path_cost =
        spfa.dist_right[static_cast<std::size_t>(end)];
    if (out.total_cost + path_cost > budget) break;  // budget exhausted
    out.total_cost += path_cost;

    // Flip the augmenting path walking back from `end`. Only matched left
    // vertices ever receive a right-parent, so the walk terminates at the
    // path's free left source.
    VertexId b = end;
    for (;;) {
      const VertexId a = spfa.parent_left_of_right[static_cast<std::size_t>(b)];
      WDM_DCHECK(a != kNoVertex);
      const VertexId prev_b =
          spfa.parent_right_of_left[static_cast<std::size_t>(a)];
      m.unmatch_left(a);  // frees prev_b; no-op when a is the free source
      m.match(a, b);
      if (prev_b == kNoVertex) break;
      b = prev_b;
    }
  }

#ifndef NDEBUG
  std::int64_t recomputed = 0;
  for (VertexId a = 0; a < g.n_left(); ++a) {
    const VertexId b = m.right_of(a);
    if (b != kNoVertex) recomputed += cost(a, b);
  }
  WDM_DCHECK(recomputed == out.total_cost);
#endif
  return out;
}

}  // namespace

CostedMatching min_cost_maximum_matching(const BipartiteGraph& g,
                                         const EdgeCost& cost) {
  return ssp_matching(g, cost, kInf);
}

CostedMatching budgeted_min_cost_matching(const BipartiteGraph& g,
                                          const EdgeCost& cost,
                                          std::int64_t budget) {
  WDM_CHECK_MSG(budget >= 0, "budget must be nonnegative");
  return ssp_matching(g, cost, budget);
}

}  // namespace wdm::graph
