// Minimum-cost maximum bipartite matching (successive shortest paths).
//
// Finds a maximum-cardinality matching that, among all maximum matchings,
// minimises the sum of edge costs. Used by core::min_conversion_schedule to
// compute schedules that engage as few wavelength converters as possible —
// an economics question the paper's architecture raises (converters are the
// expensive component) that plain BFA/FA do not optimise.
//
// Algorithm: successive shortest augmenting paths on the residual graph with
// SPFA (costs may be negative on reversed matched edges). Cardinality takes
// priority automatically: every augmentation raises the matching size by one
// and the SSP invariant keeps each intermediate flow cost-minimal for its
// cardinality. Complexity O(V^2 E) worst case — ample for request graphs
// (V <= Nk, E <= Nkd) at evaluation scale.
#pragma once

#include <cstdint>
#include <functional>

#include "graph/bipartite_graph.hpp"
#include "graph/matching.hpp"

namespace wdm::graph {

/// Cost of the edge (a, b); must be nonnegative and must be defined for
/// every edge present in the graph.
using EdgeCost = std::function<std::int32_t(VertexId a, VertexId b)>;

struct CostedMatching {
  Matching matching;
  std::int64_t total_cost = 0;
};

/// Maximum matching of minimum total cost among maximum matchings.
CostedMatching min_cost_maximum_matching(const BipartiteGraph& g,
                                         const EdgeCost& cost);

/// Maximum-cardinality matching subject to total cost <= budget.
/// Exploits the SSP invariant: the minimum cost of a size-m matching is
/// convex nondecreasing in m, and each augmentation adds exactly its path
/// cost — so greedily augmenting along cheapest paths until the next one
/// would burst the budget is optimal for both objectives (cardinality
/// first, then cost).
CostedMatching budgeted_min_cost_matching(const BipartiteGraph& g,
                                          const EdgeCost& cost,
                                          std::int64_t budget);

}  // namespace wdm::graph
