// Matchings in bipartite graphs.
//
// A matching is stored from both sides so that schedulers can answer both
// "which channel did request a get?" and "which request occupies channel b?"
// in O(1). `is_valid_matching` is the invariant checker used by every
// property test: edges must exist in the graph and be vertex-disjoint
// (Section II.B of the paper: one channel per request, one request per
// channel under unicast traffic).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/bipartite_graph.hpp"

namespace wdm::graph {

class Matching {
 public:
  Matching(VertexId n_left, VertexId n_right);

  VertexId n_left() const noexcept {
    return static_cast<VertexId>(right_of_left_.size());
  }
  VertexId n_right() const noexcept {
    return static_cast<VertexId>(left_of_right_.size());
  }

  /// Adds edge (a, b); both endpoints must currently be unmatched.
  void match(VertexId a, VertexId b);
  /// Removes the matched edge at a, if any.
  void unmatch_left(VertexId a);

  /// Right partner of a, or kNoVertex.
  VertexId right_of(VertexId a) const;
  /// Left partner of b, or kNoVertex.
  VertexId left_of(VertexId b) const;

  bool left_matched(VertexId a) const { return right_of(a) != kNoVertex; }
  bool right_matched(VertexId b) const { return left_of(b) != kNoVertex; }

  /// Number of matched edges.
  std::size_t size() const noexcept { return size_; }

  /// Internal consistency (mutual pointers agree). Cheap; used in DCHECKs.
  bool is_consistent() const noexcept;

 private:
  std::vector<VertexId> right_of_left_;
  std::vector<VertexId> left_of_right_;
  std::size_t size_ = 0;
};

/// True iff every matched edge exists in `g` and the matching is consistent.
bool is_valid_matching(const BipartiteGraph& g, const Matching& m);

}  // namespace wdm::graph
