// General bipartite graphs.
//
// This is the substrate the paper compares against: request graphs are
// bipartite graphs between connection requests (left) and output wavelength
// channels (right), and the generic maximum-matching algorithms
// (Hopcroft–Karp, Kuhn) operate on this representation. The specialised
// schedulers in src/core never materialise such a graph — that is exactly the
// point of the paper — but the tests use this form as an oracle.
#pragma once

#include <cstdint>
#include <vector>

namespace wdm::graph {

/// Vertex index within one side of a bipartite graph.
using VertexId = std::int32_t;

/// Sentinel for "not matched" / "no vertex".
inline constexpr VertexId kNoVertex = -1;

class BipartiteGraph {
 public:
  /// Creates a graph with `n_left` left and `n_right` right vertices, no edges.
  BipartiteGraph(VertexId n_left, VertexId n_right);

  VertexId n_left() const noexcept { return static_cast<VertexId>(adj_.size()); }
  VertexId n_right() const noexcept { return n_right_; }
  std::size_t n_edges() const noexcept { return n_edges_; }

  /// Adds edge (a, b); duplicate edges are allowed but never useful here.
  void add_edge(VertexId a, VertexId b);

  /// Right-side neighbours of left vertex a, in insertion order.
  const std::vector<VertexId>& neighbors(VertexId a) const;

  /// Linear-scan membership test (adjacency lists are short: |adj| <= d).
  bool has_edge(VertexId a, VertexId b) const;

  /// Degree of left vertex a.
  std::size_t degree(VertexId a) const { return neighbors(a).size(); }

 private:
  std::vector<std::vector<VertexId>> adj_;
  VertexId n_right_;
  std::size_t n_edges_ = 0;
};

}  // namespace wdm::graph
