#include "graph/convex.hpp"

#include "util/check.hpp"

namespace wdm::graph {

ConvexBipartiteGraph::ConvexBipartiteGraph(std::vector<Interval> intervals,
                                           VertexId n_right)
    : intervals_(std::move(intervals)), n_right_(n_right) {
  WDM_CHECK_MSG(n_right >= 0, "right vertex count must be nonnegative");
  for (const auto& iv : intervals_) {
    if (iv.empty()) continue;
    WDM_CHECK_MSG(iv.begin >= 0 && iv.end < n_right,
                  "interval endpoints out of range");
  }
}

const Interval& ConvexBipartiteGraph::interval(VertexId a) const {
  WDM_CHECK_MSG(a >= 0 && a < n_left(), "left vertex out of range");
  return intervals_[static_cast<std::size_t>(a)];
}

std::size_t ConvexBipartiteGraph::n_edges() const noexcept {
  std::size_t total = 0;
  for (const auto& iv : intervals_) total += static_cast<std::size_t>(iv.length());
  return total;
}

bool ConvexBipartiteGraph::is_staircase() const noexcept {
  // Empty intervals are transparent: they impose no ordering constraint.
  VertexId prev_begin = 0;
  VertexId prev_end = -1;
  bool seen = false;
  for (const auto& iv : intervals_) {
    if (iv.empty()) continue;
    if (seen && (iv.begin < prev_begin || iv.end < prev_end)) return false;
    prev_begin = iv.begin;
    prev_end = iv.end;
    seen = true;
  }
  return true;
}

BipartiteGraph ConvexBipartiteGraph::to_bipartite() const {
  BipartiteGraph g(n_left(), n_right_);
  for (VertexId a = 0; a < n_left(); ++a) {
    const auto& iv = intervals_[static_cast<std::size_t>(a)];
    for (VertexId b = iv.begin; b <= iv.end; ++b) g.add_edge(a, b);
  }
  return g;
}

}  // namespace wdm::graph
