#include "graph/matching.hpp"

#include "util/check.hpp"

namespace wdm::graph {

Matching::Matching(VertexId n_left, VertexId n_right) {
  WDM_CHECK_MSG(n_left >= 0 && n_right >= 0, "vertex counts must be nonnegative");
  right_of_left_.assign(static_cast<std::size_t>(n_left), kNoVertex);
  left_of_right_.assign(static_cast<std::size_t>(n_right), kNoVertex);
}

void Matching::match(VertexId a, VertexId b) {
  WDM_CHECK_MSG(a >= 0 && a < n_left(), "left vertex out of range");
  WDM_CHECK_MSG(b >= 0 && b < n_right(), "right vertex out of range");
  WDM_CHECK_MSG(right_of_left_[static_cast<std::size_t>(a)] == kNoVertex,
                "left vertex already matched");
  WDM_CHECK_MSG(left_of_right_[static_cast<std::size_t>(b)] == kNoVertex,
                "right vertex already matched");
  right_of_left_[static_cast<std::size_t>(a)] = b;
  left_of_right_[static_cast<std::size_t>(b)] = a;
  size_ += 1;
}

void Matching::unmatch_left(VertexId a) {
  WDM_CHECK_MSG(a >= 0 && a < n_left(), "left vertex out of range");
  const VertexId b = right_of_left_[static_cast<std::size_t>(a)];
  if (b == kNoVertex) return;
  right_of_left_[static_cast<std::size_t>(a)] = kNoVertex;
  left_of_right_[static_cast<std::size_t>(b)] = kNoVertex;
  size_ -= 1;
}

VertexId Matching::right_of(VertexId a) const {
  WDM_CHECK_MSG(a >= 0 && a < n_left(), "left vertex out of range");
  return right_of_left_[static_cast<std::size_t>(a)];
}

VertexId Matching::left_of(VertexId b) const {
  WDM_CHECK_MSG(b >= 0 && b < n_right(), "right vertex out of range");
  return left_of_right_[static_cast<std::size_t>(b)];
}

bool Matching::is_consistent() const noexcept {
  std::size_t counted = 0;
  for (std::size_t a = 0; a < right_of_left_.size(); ++a) {
    const VertexId b = right_of_left_[a];
    if (b == kNoVertex) continue;
    if (b < 0 || b >= n_right()) return false;
    if (left_of_right_[static_cast<std::size_t>(b)] != static_cast<VertexId>(a)) {
      return false;
    }
    counted += 1;
  }
  for (std::size_t b = 0; b < left_of_right_.size(); ++b) {
    const VertexId a = left_of_right_[b];
    if (a == kNoVertex) continue;
    if (a < 0 || a >= n_left()) return false;
    if (right_of_left_[static_cast<std::size_t>(a)] != static_cast<VertexId>(b)) {
      return false;
    }
  }
  return counted == size_;
}

bool is_valid_matching(const BipartiteGraph& g, const Matching& m) {
  if (m.n_left() != g.n_left() || m.n_right() != g.n_right()) return false;
  if (!m.is_consistent()) return false;
  for (VertexId a = 0; a < g.n_left(); ++a) {
    const VertexId b = m.right_of(a);
    if (b != kNoVertex && !g.has_edge(a, b)) return false;
  }
  return true;
}

}  // namespace wdm::graph
