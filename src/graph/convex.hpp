// Convex bipartite graphs (Glover 1967, as used in Section III of the paper).
//
// A bipartite graph is convex when, under some ordering of the right side,
// every left vertex's adjacency set is an interval [begin, end]. Request
// graphs of non-circular symmetric wavelength conversion are convex with the
// natural wavelength ordering, and additionally *staircase*: both begin and
// end are nondecreasing in the left vertex order. The staircase property is
// what lets Glover's min-END rule collapse to the paper's First Available
// rule (Theorem 1).
#pragma once

#include <vector>

#include "graph/bipartite_graph.hpp"

namespace wdm::graph {

/// Closed adjacency interval of one left vertex; empty() when begin > end.
struct Interval {
  VertexId begin = 0;
  VertexId end = -1;

  bool empty() const noexcept { return begin > end; }
  bool contains(VertexId b) const noexcept { return begin <= b && b <= end; }
  VertexId length() const noexcept { return empty() ? 0 : end - begin + 1; }

  friend bool operator==(const Interval&, const Interval&) = default;
};

class ConvexBipartiteGraph {
 public:
  /// `intervals[a]` is the adjacency interval of left vertex a over right
  /// vertices [0, n_right). Empty intervals model isolated requests.
  ConvexBipartiteGraph(std::vector<Interval> intervals, VertexId n_right);

  VertexId n_left() const noexcept {
    return static_cast<VertexId>(intervals_.size());
  }
  VertexId n_right() const noexcept { return n_right_; }
  const Interval& interval(VertexId a) const;
  const std::vector<Interval>& intervals() const noexcept { return intervals_; }

  std::size_t n_edges() const noexcept;

  /// True when both BEGIN and END are nondecreasing in left order — the
  /// structure request graphs of non-circular conversion always have.
  bool is_staircase() const noexcept;

  /// Materialises the explicit edge list (for the generic oracles).
  BipartiteGraph to_bipartite() const;

 private:
  std::vector<Interval> intervals_;
  VertexId n_right_;
};

}  // namespace wdm::graph
