#include "graph/generators.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace wdm::graph {

BipartiteGraph random_bipartite(util::Rng& rng, VertexId n_left,
                                VertexId n_right, double p) {
  BipartiteGraph g(n_left, n_right);
  for (VertexId a = 0; a < n_left; ++a) {
    for (VertexId b = 0; b < n_right; ++b) {
      if (rng.bernoulli(p)) g.add_edge(a, b);
    }
  }
  return g;
}

ConvexBipartiteGraph random_convex(util::Rng& rng, VertexId n_left,
                                   VertexId n_right, VertexId max_width,
                                   double empty_prob) {
  WDM_CHECK(n_right > 0 && max_width > 0);
  std::vector<Interval> intervals(static_cast<std::size_t>(n_left));
  for (auto& iv : intervals) {
    if (rng.bernoulli(empty_prob)) continue;  // leave empty
    const auto begin =
        static_cast<VertexId>(rng.uniform_below(static_cast<std::uint64_t>(n_right)));
    const auto width = static_cast<VertexId>(
        1 + rng.uniform_below(static_cast<std::uint64_t>(max_width)));
    iv.begin = begin;
    iv.end = std::min<VertexId>(n_right - 1, begin + width - 1);
  }
  return ConvexBipartiteGraph(std::move(intervals), n_right);
}

ConvexBipartiteGraph random_staircase(util::Rng& rng, VertexId n_left,
                                      VertexId n_right, VertexId max_width) {
  WDM_CHECK(n_right > 0 && max_width > 0);
  // Draw begins and sort; force END monotonicity by clamping against the
  // previous end (still an arbitrary staircase instance, just correlated).
  std::vector<VertexId> begins(static_cast<std::size_t>(n_left));
  for (auto& b : begins) {
    b = static_cast<VertexId>(rng.uniform_below(static_cast<std::uint64_t>(n_right)));
  }
  std::sort(begins.begin(), begins.end());

  std::vector<Interval> intervals(static_cast<std::size_t>(n_left));
  VertexId prev_end = -1;
  for (std::size_t i = 0; i < begins.size(); ++i) {
    const auto width = static_cast<VertexId>(
        1 + rng.uniform_below(static_cast<std::uint64_t>(max_width)));
    const VertexId end = std::min<VertexId>(
        n_right - 1, std::max<VertexId>(begins[i] + width - 1, prev_end));
    intervals[i] = Interval{begins[i], end};
    prev_end = end;
  }
  return ConvexBipartiteGraph(std::move(intervals), n_right);
}

}  // namespace wdm::graph
