// Greedy maximal matching — the ablation baseline.
//
// Matches each left vertex (in index or shuffled order) to its first free
// neighbour. The result is maximal but not maximum (guaranteed only >= 1/2
// of optimum); comparing it against the paper's exact algorithms quantifies
// how much throughput the maximum-matching machinery actually buys
// (experiment E8).
#pragma once

#include "graph/bipartite_graph.hpp"
#include "graph/matching.hpp"
#include "util/rng.hpp"

namespace wdm::graph {

/// Greedy maximal matching in left-vertex index order.
Matching greedy_maximal_matching(const BipartiteGraph& g);

/// Greedy maximal matching visiting left vertices in a random order.
Matching greedy_maximal_matching(const BipartiteGraph& g, util::Rng& rng);

}  // namespace wdm::graph
