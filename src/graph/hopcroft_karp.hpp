// Hopcroft–Karp maximum bipartite matching — the paper's named baseline [1].
//
// O(sqrt(V) * E). On a request graph of an N x N interconnect with k
// wavelengths and conversion degree d this is O(N^1.5 k^1.5 d), which is what
// the paper's O(k) / O(dk) distributed algorithms are measured against
// (experiments E1/E2). The tests additionally use it as the optimality oracle:
// any candidate scheduler is maximum iff it matches Hopcroft–Karp's size.
#pragma once

#include "graph/bipartite_graph.hpp"
#include "graph/matching.hpp"

namespace wdm::graph {

/// Returns a maximum matching of `g`.
Matching hopcroft_karp(const BipartiteGraph& g);

}  // namespace wdm::graph
