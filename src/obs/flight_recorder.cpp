#include "obs/flight_recorder.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

namespace wdm::obs {

namespace fs = std::filesystem;

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

BlackBoxWriter::BlackBoxWriter(std::string root)
    : root_(std::move(root)), writer_([this] { writer_main(); }) {}

BlackBoxWriter::~BlackBoxWriter() {
  {
    const std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (writer_.joinable()) writer_.join();
}

void BlackBoxWriter::enqueue(BlackBoxDump dump) {
  {
    const std::lock_guard lock(mu_);
    queue_.push_back(std::move(dump));
  }
  enqueued_.fetch_add(1, std::memory_order_relaxed);
  cv_.notify_all();
}

void BlackBoxWriter::flush() {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
}

std::string BlackBoxWriter::last_error() const {
  const std::lock_guard lock(mu_);
  return error_;
}

void BlackBoxWriter::writer_main() {
  std::unique_lock lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    BlackBoxDump dump = std::move(queue_.front());
    queue_.pop_front();
    busy_ = true;
    lock.unlock();

    std::string error;
    const bool ok = write_dump(dump, error);

    lock.lock();
    busy_ = false;
    if (ok) {
      written_.fetch_add(1, std::memory_order_relaxed);
    } else {
      failed_.fetch_add(1, std::memory_order_relaxed);
      if (error_.empty()) error_ = error;
    }
    cv_.notify_all();  // wake flush() waiters
  }
}

bool BlackBoxWriter::write_dump(const BlackBoxDump& dump, std::string& error) {
  std::error_code ec;
  fs::path dir = fs::path(root_) / "blackbox" / dump.name;
  // A repeat incident for the same shard+slot keeps both dumps on disk.
  for (int suffix = 2; fs::exists(dir, ec) && suffix < 100; ++suffix) {
    dir = fs::path(root_) / "blackbox" / (dump.name + "-" +
                                          std::to_string(suffix));
  }
  fs::create_directories(dir, ec);
  if (ec) {
    error = "mkdir " + dir.string() + ": " + ec.message();
    return false;
  }

  {
    std::ofstream os(dir / "trace.json");
    write_chrome_trace(os, std::span<const TraceEvent>(dump.events));
    if (!os) {
      error = "write " + (dir / "trace.json").string();
      return false;
    }
  }
  {
    std::ofstream os(dir / "metrics.prom");
    write_prometheus(os, dump.metrics);
    if (!os) {
      error = "write " + (dir / "metrics.prom").string();
      return false;
    }
  }
  {
    std::ofstream os(dir / "blackbox.json");
    os << dump.manifest_json;
    if (!os) {
      error = "write " + (dir / "blackbox.json").string();
      return false;
    }
  }
  return true;
}

}  // namespace wdm::obs
