#include "obs/registry.hpp"

#include <ostream>
#include <unordered_set>
#include <utility>

namespace wdm::obs {

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string escape_help(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string label(std::string_view name, std::string_view value) {
  std::string out(name);
  out += "=\"";
  out += escape_label_value(value);
  out += '"';
  return out;
}

Registry& Registry::counter(std::string name, std::string help,
                            std::uint64_t value, std::string labels) {
  Entry e;
  e.name = std::move(name);
  e.help = std::move(help);
  e.labels = std::move(labels);
  e.type = Type::kCounter;
  e.counter_value = value;
  entries_.push_back(std::move(e));
  return *this;
}

Registry& Registry::gauge(std::string name, std::string help, double value,
                          std::string labels) {
  Entry e;
  e.name = std::move(name);
  e.help = std::move(help);
  e.labels = std::move(labels);
  e.type = Type::kGauge;
  e.gauge_value = value;
  entries_.push_back(std::move(e));
  return *this;
}

Registry& Registry::histogram(std::string name, std::string help,
                              const Histogram& h, std::string labels) {
  Entry e;
  e.name = std::move(name);
  e.help = std::move(help);
  e.labels = std::move(labels);
  e.type = Type::kHistogram;
  e.hist.count = h.count();
  e.hist.sum = h.sum();
  std::uint64_t cumulative = 0;
  h.for_each_nonempty([&](std::uint64_t /*lo*/, std::uint64_t hi,
                          std::uint64_t count) {
    cumulative += count;
    e.hist.cumulative.emplace_back(hi, cumulative);
  });
  entries_.push_back(std::move(e));
  return *this;
}

namespace {

/// `name{labels}` or `name{labels,extra}`; bare `name` when both are empty.
void write_series(std::ostream& os, const std::string& name,
                  const std::string& suffix, const std::string& labels,
                  const std::string& extra = "") {
  os << name << suffix;
  if (!labels.empty() || !extra.empty()) {
    os << '{' << labels;
    if (!labels.empty() && !extra.empty()) os << ',';
    os << extra << '}';
  }
  os << ' ';
}

}  // namespace

void write_prometheus(std::ostream& os, const Registry& registry) {
  std::unordered_set<std::string> announced;
  for (const auto& e : registry.entries_) {
    if (announced.insert(e.name).second) {
      os << "# HELP " << e.name << ' ' << escape_help(e.help) << '\n';
      os << "# TYPE " << e.name << ' ';
      switch (e.type) {
        case Registry::Type::kCounter: os << "counter"; break;
        case Registry::Type::kGauge: os << "gauge"; break;
        case Registry::Type::kHistogram: os << "histogram"; break;
      }
      os << '\n';
    }
    switch (e.type) {
      case Registry::Type::kCounter:
        write_series(os, e.name, "", e.labels);
        os << e.counter_value << '\n';
        break;
      case Registry::Type::kGauge:
        write_series(os, e.name, "", e.labels);
        os << e.gauge_value << '\n';
        break;
      case Registry::Type::kHistogram: {
        for (const auto& [le, cumulative] : e.hist.cumulative) {
          write_series(os, e.name, "_bucket", e.labels,
                       "le=\"" + std::to_string(le) + "\"");
          os << cumulative << '\n';
        }
        write_series(os, e.name, "_bucket", e.labels, "le=\"+Inf\"");
        os << e.hist.count << '\n';
        write_series(os, e.name, "_sum", e.labels);
        os << e.hist.sum << '\n';
        write_series(os, e.name, "_count", e.labels);
        os << e.hist.count << '\n';
        break;
      }
    }
  }
}

}  // namespace wdm::obs
