// Embedded Prometheus scrape endpoint: a minimal HTTP/1.1 server that
// answers `GET /metrics` with the most recently published Registry
// snapshot, so a running simulation can be observed live instead of only
// through end-of-run files.
//
// The design keeps the serving path completely off the slot loop:
//
//   - The slot loop (or any producer) renders a Registry to text every K
//     slots and hands the string to publish(). publish() builds the new
//     payload off to the side and swaps one shared_ptr under a tiny mutex —
//     double buffering, not in-place mutation — so a scrape that raced the
//     swap keeps reading the old snapshot to completion.
//   - One accept thread owns the listening socket and serves connections
//     serially (a scrape is a few hundred bytes; there is nothing to
//     pipeline). It never touches simulation state, only published strings,
//     so a concurrent scraper cannot perturb decisions: fleet_digest
//     equality with and without a live scraper is test-pinned.
//
// Portability mirrors util::cpu_affinity: on POSIX platforms start() binds
// and serves; elsewhere it is a no-op that returns false and the caller
// surfaces that (examples/simulate warns and runs without the endpoint).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace wdm::obs {

class Registry;

class MetricsServer {
 public:
  MetricsServer();
  ~MetricsServer();  // stop()s; never throws

  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

  /// Binds 0.0.0.0:`port` (0 picks an ephemeral port — tests use this) and
  /// starts the accept thread. Returns false on the portable no-op fallback
  /// or on any socket failure; last_error() then says why. Call at most
  /// once per start/stop cycle.
  bool start(std::uint16_t port);
  /// Closes the listening socket and joins the accept thread. Idempotent.
  void stop();
  bool running() const noexcept { return running_.load(std::memory_order_acquire); }

  /// The actually bound port (resolves port 0); 0 when not running.
  std::uint16_t port() const noexcept { return port_; }
  /// Human-readable reason for the last start() failure.
  const std::string& last_error() const noexcept { return error_; }

  /// Swaps in a new /metrics payload (Prometheus text exposition). Cheap
  /// for the producer: one string move and one pointer swap; in-flight
  /// scrapes finish against the previous snapshot.
  void publish(std::string body);
  /// Convenience: renders `registry` via write_prometheus and publishes it.
  void publish(const Registry& registry);

  /// GET /metrics requests answered so far (other paths get 404 and are
  /// not counted).
  std::uint64_t scrapes() const noexcept {
    return scrapes_.load(std::memory_order_relaxed);
  }

 private:
  void accept_main();
  void serve_connection(int fd);

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::string error_;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> scrapes_{0};

  mutable std::mutex body_mu_;
  std::shared_ptr<const std::string> body_;  // current published snapshot
};

}  // namespace wdm::obs
