// Metric registry + Prometheus text exposition.
//
// A Registry is a flat, insertion-ordered snapshot of named metrics —
// counters, gauges, and histogram snapshots — built at export time from
// whatever the caller wants to expose (sim::register_metrics covers every
// SlotStats/MetricsCollector counter; obs::register_recorder adds the stage
// histograms). write_prometheus renders it in the Prometheus text
// exposition format (version 0.0.4): `# HELP` / `# TYPE` once per metric
// name, cumulative `le` buckets plus `+Inf`, `_sum` and `_count` series.
//
// This is a snapshot container, not a live metrics pipeline: nothing here
// is on the hot path, so plain std::string labels are fine.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/histogram.hpp"

namespace wdm::obs {

/// Escapes a label *value* for the text exposition format: backslash,
/// double quote, and newline become `\\`, `\"`, and `\n`. Returns the bare
/// escaped value (no quotes) — compose with label() for a full pair.
std::string escape_label_value(std::string_view value);

/// Escapes HELP text: backslash and newline become `\\` and `\n` (quotes
/// are legal in HELP and stay as-is).
std::string escape_help(std::string_view text);

/// Builds one `name="value"` label pair with the value escaped. The
/// sanctioned way to splice runtime strings into a Registry labels field.
std::string label(std::string_view name, std::string_view value);

class Registry {
 public:
  /// A monotonically increasing count. `labels` is the raw inside-the-braces
  /// text, e.g. `class="0"`; empty for none.
  Registry& counter(std::string name, std::string help, std::uint64_t value,
                    std::string labels = "");
  /// A point-in-time value.
  Registry& gauge(std::string name, std::string help, double value,
                  std::string labels = "");
  /// A full histogram snapshot (cumulative buckets at the non-empty bucket
  /// edges, +Inf, _sum, _count).
  Registry& histogram(std::string name, std::string help, const Histogram& h,
                      std::string labels = "");

  std::size_t size() const noexcept { return entries_.size(); }

 private:
  enum class Type : std::uint8_t { kCounter, kGauge, kHistogram };

  struct HistogramSnapshot {
    /// (inclusive upper edge, cumulative count) per non-empty bucket.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> cumulative;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
  };

  struct Entry {
    std::string name;
    std::string help;
    std::string labels;
    Type type = Type::kCounter;
    std::uint64_t counter_value = 0;
    double gauge_value = 0.0;
    HistogramSnapshot hist;
  };

  std::vector<Entry> entries_;

  friend void write_prometheus(std::ostream& os, const Registry& registry);
};

/// Renders the registry in the Prometheus text exposition format.
void write_prometheus(std::ostream& os, const Registry& registry);

}  // namespace wdm::obs
