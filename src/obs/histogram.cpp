#include "obs/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace wdm::obs {

Histogram::Histogram() : counts_(kBucketCount, 0) {}

std::size_t Histogram::bucket_index(std::uint64_t value) noexcept {
  if (value < kSubCount) return static_cast<std::size_t>(value);
  const auto msb = static_cast<std::uint32_t>(std::bit_width(value) - 1);
  const std::uint32_t octave = msb - (kSubBits - 1);  // >= 1
  const auto sub = static_cast<std::uint32_t>((value >> (msb - kSubBits)) &
                                              (kSubCount - 1));
  return static_cast<std::size_t>(octave) * kSubCount + sub;
}

std::uint64_t Histogram::bucket_lo(std::size_t index) noexcept {
  if (index < kSubCount) return static_cast<std::uint64_t>(index);
  const std::size_t octave = index / kSubCount;  // >= 1
  const std::size_t sub = index % kSubCount;
  return static_cast<std::uint64_t>(kSubCount + sub) << (octave - 1);
}

std::uint64_t Histogram::bucket_hi(std::size_t index) noexcept {
  if (index + 1 >= kBucketCount) return ~0ULL;
  return bucket_lo(index + 1) - 1;
}

void Histogram::add(std::uint64_t value) noexcept {
  counts_[bucket_index(value)] += 1;
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  count_ += 1;
  sum_ += value;
}

void Histogram::merge(const Histogram& other) noexcept {
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    counts_[i] += other.counts_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::clear() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = sum_ = min_ = max_ = 0;
}

std::uint64_t Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    cumulative += counts_[i];
    if (cumulative >= rank) {
      // The bucket's inclusive upper edge, clamped to the true extremes so
      // small-q and large-q answers never leave the observed range.
      return std::clamp(bucket_hi(i), min_, max_);
    }
  }
  return max_;
}

}  // namespace wdm::obs
