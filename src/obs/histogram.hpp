// Fixed log-bucket (HDR-style) latency histogram.
//
// The slot pipeline needs percentiles over millions of per-slot and
// per-stage durations without keeping the samples: a sorted vector of
// doubles is O(n) memory and a post-hoc sort, and cannot be merged across
// workers. This histogram is a fixed array of counters over logarithmically
// spaced buckets — values 0..31 are exact, and every later bucket spans
// 1/32nd of an octave, bounding the relative quantile error at ~3% — so
// add() is O(1) with no allocation (the hot-path requirement of the
// telemetry plane), merge() is elementwise addition (exact: merging worker
// histograms and histogramming the merged stream are the same array), and
// any quantile is one pass over ~2k counters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wdm::obs {

class Histogram {
 public:
  /// Sub-bucket resolution: 2^kSubBits buckets per octave, so a reported
  /// quantile is within a factor 1 + 2^-kSubBits of the true sample.
  static constexpr std::uint32_t kSubBits = 5;
  static constexpr std::uint32_t kSubCount = 1u << kSubBits;
  /// Values below kSubCount get one exact bucket each (octave "0"); each of
  /// octaves 1..59 — up to and including the one holding 2^63..2^64-1 —
  /// gets kSubCount buckets.
  static constexpr std::size_t kBucketCount =
      kSubCount + (64 - kSubBits) * kSubCount;

  Histogram();

  /// O(1), allocation-free: the counter array is sized in the constructor.
  void add(std::uint64_t value) noexcept;
  /// Elementwise counter addition; exact (no re-bucketing error).
  void merge(const Histogram& other) noexcept;
  void clear() noexcept;

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sum() const noexcept { return sum_; }
  std::uint64_t min() const noexcept { return count_ > 0 ? min_ : 0; }
  std::uint64_t max() const noexcept { return max_; }
  double mean() const noexcept {
    return count_ > 0 ? static_cast<double>(sum_) / static_cast<double>(count_)
                      : 0.0;
  }

  /// Value v such that at least ceil(q * count) recorded samples are <= v,
  /// up to the bucket resolution (exact for values < kSubCount). q in [0, 1];
  /// 0 on an empty histogram.
  std::uint64_t quantile(double q) const noexcept;
  std::uint64_t p50() const noexcept { return quantile(0.50); }
  std::uint64_t p90() const noexcept { return quantile(0.90); }
  std::uint64_t p99() const noexcept { return quantile(0.99); }
  std::uint64_t p999() const noexcept { return quantile(0.999); }

  /// Bucket index a value lands in (exposed for tests and exporters).
  static std::size_t bucket_index(std::uint64_t value) noexcept;
  /// Smallest value of bucket `index`.
  static std::uint64_t bucket_lo(std::size_t index) noexcept;
  /// Largest value of bucket `index` (inclusive; the Prometheus `le` edge).
  static std::uint64_t bucket_hi(std::size_t index) noexcept;

  std::uint64_t count_at(std::size_t index) const noexcept {
    return counts_[index];
  }

  /// Calls fn(lo, hi, count) for every non-empty bucket, in value order.
  template <typename Fn>
  void for_each_nonempty(Fn&& fn) const {
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      if (counts_[i] != 0) fn(bucket_lo(i), bucket_hi(i), counts_[i]);
    }
  }

 private:
  std::vector<std::uint64_t> counts_;  // kBucketCount entries, preallocated
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace wdm::obs
