// Per-shard flight recorder and post-mortem black-box dumps.
//
// A FlightRecorder is the always-on telemetry shard drivers fly with: a
// bounded TraceRecorder ring (overwrite-oldest, so it always holds the last
// N events before an incident) plus the per-stage latency histograms that
// ring feeds. It lives in the fleet Shard shell — NOT in the restartable
// interconnect — so its history survives shard rebuilds and a post-crash
// dump still shows the slots leading up to the crash.
//
// When supervision gives up on a shard (quarantine, restart-budget
// exhaustion, watchdog abandonment), the fleet assembles a BlackBoxDump —
// trace snapshot, rendered metrics, and a JSON manifest explaining the
// decision — and hands it to a BlackBoxWriter, which persists it under
// `<root>/blackbox/<name>/` on its own writer thread so the serving drivers
// never block on disk:
//
//   blackbox/shard-3-slot-712/
//     trace.json      last-N ring events, standalone Chrome trace
//     metrics.prom    Prometheus text: SlotStats counters, stage histograms,
//                     health/restart counters at dump time
//     blackbox.json   manifest: trigger reason, restart attempt history,
//                     recovery-discard reasons, budgets
//
// scripts/check_telemetry.py --blackbox validates all three files.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/registry.hpp"
#include "obs/telemetry.hpp"

namespace wdm::obs {

/// Flight-recorder knobs carried by fleet configuration.
struct FlightRecorderConfig {
  bool enabled = true;  ///< false: shards fly without a recorder (no dumps)
  TraceDetail detail = TraceDetail::kSlots;
  std::size_t capacity = 4096;  ///< ring slots; the "last N events" window
};

/// The always-on per-shard recorder. Thin ownership wrapper today; the type
/// exists so fleet code names the intent (black-box source) rather than a
/// bare TraceRecorder, and so capture policy can grow without touching
/// call sites.
class FlightRecorder {
 public:
  explicit FlightRecorder(const FlightRecorderConfig& config)
      : recorder_(config.detail, config.capacity) {}

  TraceRecorder& recorder() noexcept { return recorder_; }
  const TraceRecorder& recorder() const noexcept { return recorder_; }

 private:
  TraceRecorder recorder_;
};

/// One assembled post-mortem, ready to persist. Built on the thread that
/// owns the shard's ring (driver or, for abandoned shards, the winding-down
/// driver itself) so capture is race-free; writing happens elsewhere.
struct BlackBoxDump {
  std::string name;  ///< directory leaf, e.g. "shard-3-slot-712"
  std::vector<TraceEvent> events;  ///< ring snapshot, oldest first
  Registry metrics;                ///< counters + histograms at dump time
  std::string manifest_json;       ///< blackbox.json content
};

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters).
std::string json_escape(std::string_view text);

/// Asynchronous dump sink: enqueue() moves a BlackBoxDump onto a writer
/// thread that creates `<root>/blackbox/<name>/` and writes the three
/// files. Name collisions get a "-2", "-3", ... suffix rather than
/// overwriting an earlier incident.
class BlackBoxWriter {
 public:
  explicit BlackBoxWriter(std::string root);
  ~BlackBoxWriter();  // flush()es and joins

  BlackBoxWriter(const BlackBoxWriter&) = delete;
  BlackBoxWriter& operator=(const BlackBoxWriter&) = delete;

  const std::string& root() const noexcept { return root_; }

  /// Queues a dump for persistence; returns immediately.
  void enqueue(BlackBoxDump dump);
  /// Blocks until every dump enqueued so far has been written (or failed).
  void flush();

  std::uint64_t enqueued() const noexcept {
    return enqueued_.load(std::memory_order_relaxed);
  }
  /// Dumps fully persisted (all three files written without stream error).
  std::uint64_t written() const noexcept {
    return written_.load(std::memory_order_relaxed);
  }
  /// Dumps dropped on a filesystem error; first failure kept in
  /// last_error().
  std::uint64_t failed() const noexcept {
    return failed_.load(std::memory_order_relaxed);
  }
  std::string last_error() const;

 private:
  void writer_main();
  bool write_dump(const BlackBoxDump& dump, std::string& error);

  std::string root_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<BlackBoxDump> queue_;
  bool stop_ = false;
  bool busy_ = false;  // a dump is being written right now
  std::string error_;
  std::atomic<std::uint64_t> enqueued_{0};
  std::atomic<std::uint64_t> written_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::thread writer_;
};

}  // namespace wdm::obs
