#include "obs/telemetry.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <set>
#include <stdexcept>
#include <string>

#include "obs/registry.hpp"

namespace wdm::obs {

const char* to_string(TraceDetail detail) noexcept {
  switch (detail) {
    case TraceDetail::kOff: return "off";
    case TraceDetail::kSlots: return "slots";
    case TraceDetail::kFibers: return "fibers";
    case TraceDetail::kFull: return "full";
  }
  return "?";
}

std::optional<TraceDetail> parse_trace_detail(std::string_view text) noexcept {
  if (text == "off") return TraceDetail::kOff;
  if (text == "slots") return TraceDetail::kSlots;
  if (text == "fibers") return TraceDetail::kFibers;
  if (text == "full") return TraceDetail::kFull;
  return std::nullopt;
}

const char* to_string(Stage stage) noexcept {
  switch (stage) {
    case Stage::kSlot: return "slot";
    case Stage::kAging: return "aging";
    case Stage::kFaults: return "faults";
    case Stage::kRetry: return "retry";
    case Stage::kIngress: return "ingress";
    case Stage::kAdmission: return "admission";
    case Stage::kPartition: return "partition";
    case Stage::kFanout: return "fanout";
    case Stage::kMetrics: return "metrics";
    case Stage::kCount: break;
  }
  return "?";
}

const char* to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kNone: return "none";
    case EventKind::kStage: return "stage";
    case EventKind::kFiberSchedule: return "schedule";
    case EventKind::kAdmissionShed: return "admission-shed";
    case EventKind::kAdmissionQueue: return "admission-queue";
    case EventKind::kIngressRelease: return "ingress-release";
    case EventKind::kRetryDrain: return "retry-drain";
    case EventKind::kFaultFail: return "fault-fail";
    case EventKind::kFaultRepair: return "fault-repair";
    case EventKind::kCheckpointSave: return "checkpoint-save";
    case EventKind::kCheckpointLoad: return "checkpoint-load";
    case EventKind::kDegradeEnter: return "degraded-mode-enter";
    case EventKind::kDegradeExit: return "degraded-mode-exit";
    case EventKind::kDeadlineOverrun: return "deadline-overrun";
    case EventKind::kRateUpdate: return "rate-update";
    case EventKind::kShardQuarantine: return "shard-quarantine";
    case EventKind::kShardRestart: return "shard-restart";
    case EventKind::kShardRejoin: return "shard-rejoin";
    case EventKind::kShardFailed: return "shard-failed";
  }
  return "?";
}

TraceRecorder::TraceRecorder(TraceDetail level, std::size_t capacity)
    : level_(level),
      ring_(capacity > 0 ? capacity : 1),
      stage_hist_(static_cast<std::size_t>(Stage::kCount)) {}

void TraceRecorder::snapshot(std::vector<TraceEvent>& out) const {
  out.clear();
  const std::uint64_t held = size();
  out.reserve(static_cast<std::size_t>(held));
  for (std::uint64_t i = head_ - held; i < head_; ++i) {
    out.push_back(ring_[static_cast<std::size_t>(i % ring_.size())]);
  }
}

void TraceRecorder::drain(std::vector<TraceEvent>& out) {
  snapshot(out);
  head_ = 0;
}

void TraceRecorder::clear() noexcept {
  head_ = 0;
  for (auto& h : stage_hist_) h.clear();
}

namespace {

/// Microseconds with sub-ns kept: Chrome trace `ts`/`dur` are micros.
std::string us(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  return buf;
}

void begin_record(std::ostream& os, bool& first) {
  os << (first ? "\n    {" : ",\n    {");
  first = false;
}

void emit_process_metadata(std::ostream& os, bool& first) {
  begin_record(os, first);
  os << "\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
        "\"args\": {\"name\": \"wdm-interconnect\"}}";
}

void emit_thread_metadata(std::ostream& os, bool& first, std::uint16_t tid) {
  begin_record(os, first);
  os << "\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": "
     << tid << ", \"args\": {\"name\": \""
     << (tid == 0 ? std::string("slot-loop")
                  : "worker " + std::to_string(tid))
     << "\"}}";
}

void emit_event(std::ostream& os, bool& first, const TraceEvent& e,
                std::uint64_t t0) {
  begin_record(os, first);
  const bool span =
      e.kind == EventKind::kStage || e.kind == EventKind::kFiberSchedule;
  const char* name = e.kind == EventKind::kStage
                         ? to_string(static_cast<Stage>(e.detail))
                         : to_string(e.kind);
  const char* cat = "event";
  switch (e.kind) {
    case EventKind::kStage: cat = "stage"; break;
    case EventKind::kFiberSchedule: cat = "fiber"; break;
    case EventKind::kAdmissionShed:
    case EventKind::kAdmissionQueue:
    case EventKind::kIngressRelease:
    case EventKind::kRateUpdate: cat = "admission"; break;
    case EventKind::kRetryDrain: cat = "retry"; break;
    case EventKind::kFaultFail:
    case EventKind::kFaultRepair: cat = "fault"; break;
    case EventKind::kCheckpointSave:
    case EventKind::kCheckpointLoad: cat = "checkpoint"; break;
    case EventKind::kDegradeEnter:
    case EventKind::kDegradeExit:
    case EventKind::kDeadlineOverrun: cat = "overload"; break;
    case EventKind::kShardQuarantine:
    case EventKind::kShardRestart:
    case EventKind::kShardRejoin:
    case EventKind::kShardFailed: cat = "fleet"; break;
    case EventKind::kNone: break;
  }
  os << "\"name\": \"" << name << "\", \"cat\": \"" << cat
     << "\", \"ph\": \"" << (span ? "X" : "i") << "\", ";
  if (!span) os << "\"s\": \"t\", ";
  os << "\"pid\": 0, \"tid\": " << e.tid << ", \"ts\": "
     << us(e.ts_ns > t0 ? e.ts_ns - t0 : 0);
  if (span) os << ", \"dur\": " << us(e.dur_ns);
  os << ", \"args\": {\"slot\": " << e.slot;
  switch (e.kind) {
    case EventKind::kFiberSchedule:
      os << ", \"fiber\": " << e.fiber << ", \"offered\": " << e.a
         << ", \"granted\": " << e.b << ", \"kernel\": \""
         << (e.detail != 0 ? "degraded-approx" : "exact") << "\"";
      break;
    case EventKind::kAdmissionShed:
      os << ", \"fiber\": " << e.fiber << ", \"class\": " << e.a
         << ", \"evicted\": " << (e.detail != 0 ? "true" : "false");
      break;
    case EventKind::kAdmissionQueue:
      os << ", \"fiber\": " << e.fiber << ", \"class\": " << e.a;
      break;
    case EventKind::kIngressRelease:
      os << ", \"released\": " << e.a;
      break;
    case EventKind::kRetryDrain:
      os << ", \"attempts\": " << e.a << ", \"successes\": " << e.b;
      break;
    case EventKind::kFaultFail:
    case EventKind::kFaultRepair:
      os << ", \"fiber\": " << e.fiber << ", \"channel\": " << e.a
         << ", \"kind\": " << static_cast<unsigned>(e.detail);
      break;
    case EventKind::kDeadlineOverrun:
      os << ", \"slot_ns\": " << e.a << ", \"deadline_ns\": " << e.b;
      break;
    case EventKind::kRateUpdate:
      os << ", \"fiber\": " << e.fiber << ", \"rate_milli\": " << e.a
         << ", \"ewma_milli\": " << e.b;
      break;
    case EventKind::kShardQuarantine:
    case EventKind::kShardFailed:
      os << ", \"shard\": " << e.a << ", \"attempts\": " << e.b
         << ", \"watchdog\": " << (e.detail != 0 ? "true" : "false");
      break;
    case EventKind::kShardRestart:
      os << ", \"shard\": " << e.a << ", \"attempt\": " << e.b;
      break;
    case EventKind::kShardRejoin:
      os << ", \"shard\": " << e.a << ", \"recovered_slot\": " << e.b;
      break;
    default:
      break;
  }
  os << "}}";
}

}  // namespace

void write_chrome_trace(std::ostream& os, const TraceRecorder& recorder) {
  std::vector<TraceEvent> events;
  recorder.snapshot(events);
  write_chrome_trace(os, std::span<const TraceEvent>(events));
}

void write_chrome_trace(std::ostream& os, std::span<const TraceEvent> events) {
  std::uint64_t t0 = ~0ULL;
  std::set<std::uint16_t> tids;
  for (const auto& e : events) {
    if (e.ts_ns < t0) t0 = e.ts_ns;
    tids.insert(e.tid);
  }
  if (events.empty()) t0 = 0;
  tids.insert(0);

  os << "{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [";
  bool first = true;
  emit_process_metadata(os, first);
  for (const std::uint16_t tid : tids) emit_thread_metadata(os, first, tid);
  for (const auto& e : events) emit_event(os, first, e, t0);
  os << "\n  ]\n}\n";
}

ChromeTraceSegmentWriter::ChromeTraceSegmentWriter(std::string base_path,
                                                   std::uint64_t max_bytes)
    : base_path_(std::move(base_path)),
      max_bytes_(max_bytes > 0 ? max_bytes : 1) {}

ChromeTraceSegmentWriter::~ChromeTraceSegmentWriter() {
  try {
    finish();
  } catch (...) {
    // A destructor-run flush failing must not terminate; callers that care
    // about the error call finish() themselves.
  }
}

void ChromeTraceSegmentWriter::open_segment() {
  std::string path = base_path_;
  if (!paths_.empty()) path += "." + std::to_string(paths_.size());
  os_.open(path, std::ios::binary | std::ios::trunc);
  if (!os_) throw std::runtime_error("cannot open trace segment: " + path);
  paths_.push_back(std::move(path));
  first_ = true;
  seg_tids_.clear();
  os_ << "{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [";
  emit_process_metadata(os_, first_);
}

void ChromeTraceSegmentWriter::close_segment() {
  os_ << "\n  ]\n}\n";
  os_.flush();
  if (!os_) {
    throw std::runtime_error("trace segment write failed: " + paths_.back());
  }
  os_.close();
}

void ChromeTraceSegmentWriter::write(std::span<const TraceEvent> events) {
  if (events.empty()) return;
  if (!t0_set_) {
    // One timebase across all segments, so a multi-segment run still lines
    // up on a single timeline when segments are viewed side by side.
    t0_ = events.front().ts_ns;
    for (const auto& e : events) t0_ = std::min(t0_, e.ts_ns);
    t0_set_ = true;
  }
  if (!os_.is_open()) open_segment();
  for (const auto& e : events) {
    if (!seg_tids_.contains(e.tid)) {
      emit_thread_metadata(os_, first_, e.tid);
      seg_tids_.insert(e.tid);
    }
    emit_event(os_, first_, e, t0_);
    // Rollover between events, not mid-record: every segment is standalone
    // valid JSON no matter where the byte budget lands.
    if (static_cast<std::uint64_t>(os_.tellp()) >= max_bytes_) {
      close_segment();
      open_segment();
    }
  }
}

void ChromeTraceSegmentWriter::finish() {
  if (os_.is_open()) close_segment();
}

void register_recorder(Registry& registry, const TraceRecorder& recorder) {
  registry.counter("wdm_trace_events_total",
                   "Trace events recorded (including overwritten)",
                   recorder.recorded());
  registry.counter("wdm_trace_events_dropped_total",
                   "Trace events lost to ring wrap-around",
                   recorder.dropped());
  for (std::size_t s = 0; s < static_cast<std::size_t>(Stage::kCount); ++s) {
    const auto stage = static_cast<Stage>(s);
    const auto& hist = recorder.stage_histogram(stage);
    if (hist.count() == 0) continue;
    registry.histogram(
        "wdm_stage_duration_ns", "Pipeline stage wall-clock duration", hist,
        std::string("stage=\"") + to_string(stage) + "\"");
  }
}

}  // namespace wdm::obs
