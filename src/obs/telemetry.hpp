// Slot-event tracing and stage profiling for the scheduling pipeline.
//
// The pipeline answers "which slot, which output fiber, which stage" with a
// TraceRecorder: a preallocated ring buffer of fixed-size TraceEvents that
// the interconnect, scheduler, admission plane, fault injector, and
// checkpoint layer append to as a slot executes. The warm path stays inside
// the zero-allocation contract (tests/test_zero_alloc.cpp): record() is one
// indexed store into the preallocated ring, StageTimer is two clock reads
// and a store, and the per-fiber events of a parallel fan-out are staged in
// a caller-preallocated per-fiber array — each entry written by exactly one
// worker, no locks, no atomics — and merged into the ring after the join in
// deterministic fiber order.
//
// Telemetry is off by default and costs one null-pointer branch when
// disabled: every instrumentation site guards with
// `if (rec != nullptr && rec->at(level))`, both inlinable from this header.
// Recorded wall-clock timestamps live only here — never in
// sim::state_digest — so checkpoint/replay stays bit-exact with tracing on.
//
// Export: obs::write_chrome_trace emits Chrome/Perfetto `trace_event` JSON
// (open in chrome://tracing or ui.perfetto.dev), and register_recorder puts
// the per-stage latency histograms on an obs::Registry for Prometheus
// exposition (docs/OBSERVABILITY.md documents the schema).
#pragma once

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/histogram.hpp"
#include "util/timer.hpp"

namespace wdm::obs {

/// How much a recorder captures. Levels are cumulative; the CLI surface is
/// `--trace-detail {off,slots,fibers,full}`.
enum class TraceDetail : std::uint8_t {
  kOff = 0,     ///< record nothing (and instrumentation sites stay cold)
  kSlots = 1,   ///< slot + stage spans, fault / checkpoint / mode instants
  kFibers = 2,  ///< + one span per scheduled output fiber (kernel kind)
  kFull = 3,    ///< + per-request admission and ingress instants
};

const char* to_string(TraceDetail detail) noexcept;
/// Parses "off" / "slots" / "fibers" / "full"; nullopt on anything else.
std::optional<TraceDetail> parse_trace_detail(std::string_view text) noexcept;

/// Pipeline stages profiled by StageTimer (one latency histogram each).
enum class Stage : std::uint8_t {
  kSlot = 0,   ///< the whole Interconnect::step
  kAging,      ///< connection aging + expiry
  kFaults,     ///< fault injector tick + health rebuild
  kRetry,      ///< retry-queue drain + re-offer scheduling
  kIngress,    ///< admission bucket refill + ingress-queue release batch
  kAdmission,  ///< token-bucket offer() pass over fresh arrivals
  kPartition,  ///< per-slot CSR request partition (counting sort)
  kFanout,     ///< per-fiber schedule dispatch (serial or pool)
  kMetrics,    ///< per-slot stats recording in the driver loop
  kCount,      ///< number of stages (array bound, not a stage)
};

const char* to_string(Stage stage) noexcept;

/// What a TraceEvent describes. Fixed-size payloads a/b and `detail` are
/// interpreted per kind (see docs/OBSERVABILITY.md for the full schema).
enum class EventKind : std::uint8_t {
  kNone = 0,        ///< empty staging entry; append() skips these
  kStage,           ///< span: detail = Stage, a/b free per stage
  kFiberSchedule,   ///< span: fiber scheduled; a = offered, b = granted,
                    ///< detail = 1 when degraded to the O(k) approximation
  kAdmissionShed,   ///< instant: request shed; a = priority,
                    ///< detail = 1 when it was an eviction of a queued entry
  kAdmissionQueue,  ///< instant: request parked in the ingress queue
  kIngressRelease,  ///< instant: a = requests released from the queue
  kRetryDrain,      ///< instant: a = retries re-offered, b = successes
  kFaultFail,       ///< instant: component failed; detail = FaultKind
  kFaultRepair,     ///< instant: component repaired; detail = FaultKind
  kCheckpointSave,  ///< instant: checkpoint written
  kCheckpointLoad,  ///< instant: checkpoint restored
  kDegradeEnter,    ///< instant: hysteresis latched degraded mode
  kDegradeExit,     ///< instant: hysteresis released degraded mode
  kDeadlineOverrun, ///< instant: slot overran its wall-clock deadline;
                    ///< a = measured slot ns, b = deadline ns (0 on replay)
  kRateUpdate,      ///< instant: adaptive admission moved a fiber's token
                    ///< rate; a = new rate, b = grant EWMA (milli-tokens)
  kShardQuarantine, ///< instant: fleet shard quarantined; a = shard,
                    ///< b = restart attempts consumed, detail = 1 when the
                    ///< watchdog (not a crash) triggered it
  kShardRestart,    ///< instant: shard restart attempt began; a = shard,
                    ///< b = attempt number (1-based)
  kShardRejoin,     ///< instant: shard rejoined the barrier; a = shard,
                    ///< b = checkpoint slot it recovered from (0 = fresh)
  kShardFailed,     ///< instant: restart budget exhausted; a = shard,
                    ///< b = attempts consumed, detail = 1 when watchdog
};

const char* to_string(EventKind kind) noexcept;

/// One fixed-size slot event. POD; the ring holds these by value.
struct TraceEvent {
  std::uint64_t ts_ns = 0;   ///< steady-clock start (util::now_ns)
  std::uint64_t dur_ns = 0;  ///< span length; 0 for instants
  std::uint64_t slot = 0;    ///< interconnect slot index
  std::uint64_t a = 0;       ///< payload, per kind
  std::uint64_t b = 0;       ///< payload, per kind
  std::int32_t fiber = -1;   ///< output (or input) fiber, -1 = n/a
  EventKind kind = EventKind::kNone;
  std::uint8_t detail = 0;   ///< Stage / kernel kind / FaultKind, per kind
  std::uint16_t tid = 0;     ///< 0 = caller thread, 1.. = pool worker
};

/// Preallocated overwrite-oldest ring of TraceEvents plus one latency
/// histogram per Stage. Single-writer by construction: all record() calls
/// happen on the slot-loop thread; events produced inside a parallel
/// fan-out are staged per fiber (one owning worker each) and append()ed
/// after the join, so the warm path needs no locks and no allocation.
class TraceRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  explicit TraceRecorder(TraceDetail level,
                         std::size_t capacity = kDefaultCapacity);

  TraceDetail level() const noexcept { return level_; }
  /// The disabled-overhead guard: one comparison, inlined at every site.
  bool at(TraceDetail detail) const noexcept { return level_ >= detail; }

  void record(const TraceEvent& event) noexcept {
    ring_[static_cast<std::size_t>(head_ % ring_.size())] = event;
    head_ += 1;
  }

  /// Appends staged per-fiber events, skipping kNone sentinels. Called once
  /// per scheduling pass, after the parallel join, in fiber order — so the
  /// ring's content (timestamps aside) is deterministic under any pool.
  void append(std::span<const TraceEvent> events) noexcept {
    for (const auto& e : events) {
      if (e.kind != EventKind::kNone) record(e);
    }
  }

  /// Records a kStage span and feeds the stage's latency histogram.
  void record_stage(Stage stage, std::uint64_t slot, std::uint64_t t0_ns,
                    std::uint64_t t1_ns, std::uint64_t a = 0,
                    std::uint64_t b = 0) noexcept {
    TraceEvent e;
    e.ts_ns = t0_ns;
    e.dur_ns = t1_ns - t0_ns;
    e.slot = slot;
    e.a = a;
    e.b = b;
    e.kind = EventKind::kStage;
    e.detail = static_cast<std::uint8_t>(stage);
    record(e);
    stage_hist_[static_cast<std::size_t>(stage)].add(e.dur_ns);
  }

  std::size_t capacity() const noexcept { return ring_.size(); }
  /// Events recorded over the recorder's lifetime (including overwritten).
  std::uint64_t recorded() const noexcept { return head_; }
  /// Events lost to ring wrap-around.
  std::uint64_t dropped() const noexcept {
    return head_ > ring_.size() ? head_ - ring_.size() : 0;
  }
  /// Events currently held.
  std::size_t size() const noexcept {
    return static_cast<std::size_t>(
        head_ < ring_.size() ? head_ : static_cast<std::uint64_t>(ring_.size()));
  }

  /// Copies the held events oldest-first into `out`.
  void snapshot(std::vector<TraceEvent>& out) const;

  /// snapshot() + empties the ring, keeping the stage histograms (their
  /// samples were never in the ring). Segment-rotated export uses this to
  /// stream events out before the ring wraps, without losing latency stats.
  void drain(std::vector<TraceEvent>& out);

  Histogram& stage_histogram(Stage stage) noexcept {
    return stage_hist_[static_cast<std::size_t>(stage)];
  }
  const Histogram& stage_histogram(Stage stage) const noexcept {
    return stage_hist_[static_cast<std::size_t>(stage)];
  }

  void clear() noexcept;

 private:
  TraceDetail level_;
  std::vector<TraceEvent> ring_;
  std::uint64_t head_ = 0;  // total events ever recorded
  std::vector<Histogram> stage_hist_;  // one per Stage
};

/// RAII span timer: reads the clock on construction and records a kStage
/// span (+ histogram sample) on destruction. With a null recorder, or one
/// below `gate`, both ends collapse to a branch — the telemetry-off cost.
class StageTimer {
 public:
  StageTimer(TraceRecorder* recorder, Stage stage, std::uint64_t slot,
             TraceDetail gate = TraceDetail::kSlots) noexcept
      : recorder_(recorder != nullptr && recorder->at(gate) ? recorder
                                                            : nullptr),
        stage_(stage),
        slot_(slot),
        t0_ns_(recorder_ != nullptr ? util::now_ns() : 0) {}
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;
  ~StageTimer() {
    if (recorder_ != nullptr) {
      recorder_->record_stage(stage_, slot_, t0_ns_, util::now_ns());
    }
  }

 private:
  TraceRecorder* recorder_;
  Stage stage_;
  std::uint64_t slot_;
  std::uint64_t t0_ns_;
};

/// Writes the recorder's events as Chrome/Perfetto `trace_event` JSON
/// (the `{"traceEvents": [...]}` object form, timestamps normalised to the
/// earliest event). Loads directly in chrome://tracing and ui.perfetto.dev.
void write_chrome_trace(std::ostream& os, const TraceRecorder& recorder);

/// Same trace JSON from a raw event batch (e.g. a flight-recorder snapshot
/// captured at quarantine time); the recorder overload delegates here.
void write_chrome_trace(std::ostream& os, std::span<const TraceEvent> events);

/// Streaming, segment-rotated Chrome-trace export for long soaks: feed it
/// event batches (typically TraceRecorder::drain every few hundred slots)
/// and it writes them through to disk, starting a new file whenever the
/// current segment crosses `max_bytes`. Every segment is standalone valid
/// trace JSON (own metadata records, shared timebase), named
/// `path`, `path.1`, `path.2`, ... so a run's telemetry footprint is
/// bounded per file instead of buffered whole in the ring.
class ChromeTraceSegmentWriter {
 public:
  /// `max_bytes` is a soft per-segment bound: segments roll over at the
  /// first event boundary past it (records are never split).
  ChromeTraceSegmentWriter(std::string base_path, std::uint64_t max_bytes);
  ChromeTraceSegmentWriter(const ChromeTraceSegmentWriter&) = delete;
  ChromeTraceSegmentWriter& operator=(const ChromeTraceSegmentWriter&) =
      delete;
  ~ChromeTraceSegmentWriter();

  /// Appends a batch of events, rolling segments as the byte bound is hit.
  void write(std::span<const TraceEvent> events);
  /// Closes the open segment (making it valid JSON on disk). write() after
  /// finish() starts a fresh segment. Throws on stream failure.
  void finish();

  /// Paths of every segment started so far, in order.
  const std::vector<std::string>& segment_paths() const noexcept {
    return paths_;
  }

 private:
  void open_segment();
  void close_segment();

  std::string base_path_;
  std::uint64_t max_bytes_;
  std::ofstream os_;
  std::vector<std::string> paths_;
  std::set<std::uint16_t> seg_tids_;  // tids named in the current segment
  bool first_ = true;                 // no record emitted yet this segment
  bool t0_set_ = false;
  std::uint64_t t0_ = 0;  // shared timestamp origin across segments
};

class Registry;

/// Registers the recorder's per-stage duration histograms
/// (wdm_stage_duration_ns{stage=...}) and ring counters on a Registry.
void register_recorder(Registry& registry, const TraceRecorder& recorder);

}  // namespace wdm::obs
