#include "obs/metrics_server.hpp"

#include <cstring>
#include <sstream>
#include <utility>

#include "obs/registry.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define WDM_METRICS_SERVER_POSIX 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace wdm::obs {

MetricsServer::MetricsServer()
    : body_(std::make_shared<const std::string>(
          "# metrics snapshot not yet published\n")) {}

MetricsServer::~MetricsServer() { stop(); }

void MetricsServer::publish(std::string body) {
  auto next = std::make_shared<const std::string>(std::move(body));
  const std::lock_guard lock(body_mu_);
  body_ = std::move(next);
}

void MetricsServer::publish(const Registry& registry) {
  std::ostringstream os;
  write_prometheus(os, registry);
  publish(os.str());
}

#if defined(WDM_METRICS_SERVER_POSIX)

bool MetricsServer::start(std::uint16_t port) {
  if (running_.load(std::memory_order_acquire)) {
    error_ = "already running";
    return false;
  }
  stop_.store(false, std::memory_order_relaxed);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    error_ = std::string("bind: ") + std::strerror(errno);
    ::close(fd);
    return false;
  }
  if (::listen(fd, 16) != 0) {
    error_ = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    error_ = std::string("getsockname: ") + std::strerror(errno);
    ::close(fd);
    return false;
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_main(); });
  return true;
}

void MetricsServer::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  // Shutdown wakes the blocked accept(); close reclaims the fd. The accept
  // loop sees stop_ (or an error from the dead socket) and exits.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_ = -1;
  port_ = 0;
  running_.store(false, std::memory_order_release);
}

void MetricsServer::accept_main() {
  while (!stop_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listening socket closed by stop()
    }
    serve_connection(fd);
    ::close(fd);
  }
}

void MetricsServer::serve_connection(int fd) {
  // Bound both the request size and the time we are willing to wait for it:
  // a scraper that dribbles bytes must not wedge the accept loop.
  timeval tv{};
  tv.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);

  char buf[4096];
  std::size_t used = 0;
  while (used < sizeof buf - 1) {
    const ssize_t n = ::recv(fd, buf + used, sizeof buf - 1 - used, 0);
    if (n <= 0) return;  // timeout, reset, or EOF before a full request
    used += static_cast<std::size_t>(n);
    buf[used] = '\0';
    if (std::strstr(buf, "\r\n\r\n") != nullptr ||
        std::strstr(buf, "\n\n") != nullptr) {
      break;
    }
  }

  // First request line only; headers are irrelevant to a scrape.
  const std::string request(buf, used);
  const std::size_t eol = request.find_first_of("\r\n");
  const std::string line =
      eol == std::string::npos ? request : request.substr(0, eol);

  std::string status = "404 Not Found";
  std::string content_type = "text/plain; charset=utf-8";
  std::shared_ptr<const std::string> payload;
  std::string small_body;
  if (line.rfind("GET /metrics", 0) == 0) {
    status = "200 OK";
    content_type = "text/plain; version=0.0.4; charset=utf-8";
    {
      const std::lock_guard lock(body_mu_);
      payload = body_;
    }
    scrapes_.fetch_add(1, std::memory_order_relaxed);
  } else if (line.rfind("GET /healthz", 0) == 0) {
    status = "200 OK";
    small_body = "ok\n";
  } else {
    small_body = "only GET /metrics is served here\n";
  }
  const std::string& body = payload != nullptr ? *payload : small_body;

  const std::string head = "HTTP/1.1 " + status +
                           "\r\nContent-Type: " + content_type +
                           "\r\nContent-Length: " + std::to_string(body.size()) +
                           "\r\nConnection: close\r\n\r\n";
  for (const std::string* part : {&head, &body}) {
    std::size_t sent = 0;
    while (sent < part->size()) {
      const ssize_t n =
          ::send(fd, part->data() + sent, part->size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return;
      sent += static_cast<std::size_t>(n);
    }
  }
}

#else  // portable no-op fallback, mirroring util::cpu_affinity

bool MetricsServer::start(std::uint16_t port) {
  (void)port;
  error_ = "metrics server not supported on this platform";
  return false;
}

void MetricsServer::stop() {}

void MetricsServer::accept_main() {}

void MetricsServer::serve_connection(int fd) { (void)fd; }

#endif

}  // namespace wdm::obs
