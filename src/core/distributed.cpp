#include "core/distributed.hpp"

#include <algorithm>

#include "core/simd.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace wdm::core {

DistributedScheduler::DistributedScheduler(std::int32_t n_output_fibers,
                                           ConversionScheme scheme,
                                           Algorithm algorithm,
                                           Arbitration arbitration,
                                           std::uint64_t seed)
    : scheme_(std::move(scheme)) {
  WDM_CHECK_MSG(n_output_fibers > 0, "need at least one output fiber");
  util::Rng seeder(seed);
  ports_.reserve(static_cast<std::size_t>(n_output_fibers));
  for (std::int32_t fiber = 0; fiber < n_output_fibers; ++fiber) {
    ports_.emplace_back(scheme_, algorithm, arbitration, seeder.next());
  }
}

OutputPortScheduler& DistributedScheduler::port(std::int32_t fiber) {
  WDM_CHECK(fiber >= 0 && fiber < n_output_fibers());
  return ports_[static_cast<std::size_t>(fiber)];
}

void DistributedScheduler::set_converter_budget(std::int32_t budget) {
  for (auto& port : ports_) port.set_converter_budget(budget);
}

void DistributedScheduler::reserve_batches(std::size_t max_requests_per_slot) {
  for (auto& port : ports_) port.reserve_batch(max_requests_per_slot);
}

template <typename RowFn, typename BitsFn>
void DistributedScheduler::schedule_slot_impl(
    std::span<const SlotRequest> requests, RowFn&& row_of, BitsFn&& bits_of,
    const std::vector<HealthMask>* health, util::ThreadPool* pool,
    std::span<PortDecision> decisions, SlotBudget* budget) {
  const auto n_fibers = static_cast<std::size_t>(n_output_fibers());
  std::fill(decisions.begin(), decisions.end(), PortDecision{});

  // Externally supplied data is rejected per-request, never with a throw: a
  // malformed SlotRequest (or a wrong-shaped availability or health vector)
  // costs the affected grants only, not the slot or the process.
  if (health != nullptr && health->size() != n_fibers) {
    for (auto& d : decisions) {
      d = PortDecision::reject(RejectReason::kBadHealthMask);
    }
    return;
  }

  // SoA mode (docs/ALGORITHMS.md §9): scatter 4-byte columns instead of
  // 24-byte Request structs and feed each port the column-oriented
  // schedule_batch_into. Decisions are identical either way (the batch path
  // validates the same fields in the same order and runs the same kernels);
  // faulted slots take the AoS path, whose per-fiber schedule_into composes
  // with fault reduction — and still uses masked kernels on healthy fibers.
  const bool soa = health == nullptr && simd_enabled();

  // Partition the slot's requests into the N destination subsets — a stable
  // counting sort into the reusable CSR arenas, so no request appears in two
  // subsets and arrival order within a fiber is preserved. Per-request field
  // validation happens inside the per-port scheduler. A faulted destination
  // fiber outranks field validation (the fiber is down, nothing destined to
  // it is inspected), but not output-fiber validity — an out-of-range fiber
  // has no health to consult.
  {
    const obs::StageTimer partition_timer(telemetry_, obs::Stage::kPartition,
                                          trace_slot_);
    soa_.fiber_offsets.assign(n_fibers + 1, 0);
    for (std::size_t idx = 0; idx < requests.size(); ++idx) {
      const auto& r = requests[idx];
      // One predicted branch per request on the all-valid fast path; the
      // cold branch resolves the precise rejection in the documented order
      // (output fiber, then fiber health, then priority).
      const bool fiber_ok =
          r.output_fiber >= 0 && r.output_fiber < n_output_fibers();
      if (fiber_ok && health == nullptr && r.priority >= 0) {
        soa_.fiber_offsets[static_cast<std::size_t>(r.output_fiber) + 1] += 1;
        continue;
      }
      if (!fiber_ok) {
        decisions[idx] =
            PortDecision::reject(RejectReason::kInvalidOutputFiber);
        continue;
      }
      if (health != nullptr &&
          (*health)[static_cast<std::size_t>(r.output_fiber)].fiber_faulted) {
        decisions[idx] = PortDecision::reject(RejectReason::kFaulted);
        continue;
      }
      if (r.priority < 0) {
        decisions[idx] = PortDecision::reject(RejectReason::kInvalidPriority);
        continue;
      }
      soa_.fiber_offsets[static_cast<std::size_t>(r.output_fiber) + 1] += 1;
    }
    for (std::size_t fiber = 0; fiber < n_fibers; ++fiber) {
      soa_.fiber_offsets[fiber + 1] += soa_.fiber_offsets[fiber];
    }
    const std::size_t total = soa_.fiber_offsets[n_fibers];
    if (soa) {
      soa_.resize_entries(total);
    } else {
      flat_requests_.resize(total);
      soa_.origin.resize(total);
    }
    csr_decisions_.resize(total);
    fiber_cursor_.assign(soa_.fiber_offsets.begin(),
                         soa_.fiber_offsets.end() - 1);
    for (std::size_t idx = 0; idx < requests.size(); ++idx) {
      if (decisions[idx].reason != RejectReason::kUndecided) continue;
      const auto& r = requests[idx];
      const std::size_t pos =
          fiber_cursor_[static_cast<std::size_t>(r.output_fiber)]++;
      soa_.origin[pos] = static_cast<std::uint32_t>(idx);
      if (soa) {
        soa_.wavelength[pos] = r.wavelength;
        soa_.input_fiber[pos] = r.input_fiber;
        soa_.duration[pos] = r.duration;
      } else {
        flat_requests_[pos] =
            Request{r.input_fiber, r.wavelength, r.id, r.duration};
      }
    }
  }

  // Deadline-bounded degradation plan. The op-budget decisions are made here,
  // serially and in charge order, *before* any scheduling work: the same slot
  // degrades the same ports whether or not a pool is attached. Wall-clock
  // deadlines never reach this layer — the interconnect judges the whole
  // step and feeds the verdict back through force_degraded.
  const bool budgeted = budget != nullptr && budget->active();
  if (budgeted) {
    degrade_flags_.assign(n_fibers, 0);
    const auto kk = static_cast<std::uint64_t>(k());
    const auto d = static_cast<std::uint64_t>(scheme_.degree());
    // Fairness rotation: charge fibers starting at budget->rotation so the
    // fibers past the budget's edge — the ones downgraded — move around the
    // ring from slot to slot instead of always being the highest-numbered.
    // An explicit charge_order (deepest ingress backlog first) overrides the
    // plain rotation.
    const std::size_t rot =
        budget->rotation > 0
            ? static_cast<std::size_t>(budget->rotation) % n_fibers
            : 0;
    for (std::size_t i = 0; i < n_fibers; ++i) {
      const std::size_t fiber =
          budget->charge_order != nullptr
              ? static_cast<std::size_t>(budget->charge_order[i])
              : (i + rot) % n_fibers;
      if (soa_.fiber_offsets[fiber] == soa_.fiber_offsets[fiber + 1]) continue;
      const bool degradable = ports_[fiber].degradable();
      const std::uint64_t exact_cost = degradable ? d * kk : kk;
      budget->ops_exact_estimate += exact_cost;
      bool degrade = budget->force_degraded;
      if (!degrade && budget->op_budget > 0 &&
          budget->ops_charged + exact_cost > budget->op_budget) {
        degrade = true;
      }
      budget->ops_charged += degrade && degradable ? kk : exact_cost;
      if (degrade && degradable) {
        degrade_flags_[fiber] = 1;
        budget->degraded_ports += 1;
      }
    }
  }

  // Per-fiber trace staging: one preallocated slot per fiber, written by
  // exactly the worker that schedules that fiber, merged after the join.
  // No locks, and (capacity persisting across slots) no steady-state
  // allocation on the warm path.
  const bool trace_fibers =
      telemetry_ != nullptr && telemetry_->at(obs::TraceDetail::kFibers);
  if (trace_fibers) fiber_events_.assign(n_fibers, obs::TraceEvent{});

  const auto schedule_fiber = [&](std::size_t fiber) {
    const std::size_t lo = soa_.fiber_offsets[fiber];
    const std::size_t hi = soa_.fiber_offsets[fiber + 1];
    if (lo == hi) return;
    const std::uint64_t fiber_t0 = trace_fibers ? util::now_ns() : 0;
    const std::span<PortDecision> staged{csr_decisions_.data() + lo, hi - lo};
    const HealthMask* fiber_health =
        health != nullptr ? &(*health)[fiber] : nullptr;
    const bool degraded = budgeted && degrade_flags_[fiber] != 0;
    std::uint64_t granted = 0;
    try {
      if (soa) {
        ports_[fiber].schedule_batch_into(
            std::span<const std::int32_t>{soa_.wavelength.data() + lo, hi - lo},
            std::span<const std::int32_t>{soa_.input_fiber.data() + lo,
                                          hi - lo},
            std::span<const std::int32_t>{soa_.duration.data() + lo, hi - lo},
            row_of(fiber), bits_of(fiber), staged, degraded);
      } else {
        const std::span<const Request> batch{flat_requests_.data() + lo,
                                             hi - lo};
        ports_[fiber].schedule_into(batch, row_of(fiber), fiber_health, staged,
                                    degraded, bits_of(fiber));
      }
      for (std::size_t i = 0; i < staged.size(); ++i) {
        decisions[soa_.origin[lo + i]] = staged[i];
        if (staged[i].granted) granted += 1;
      }
    } catch (...) {
      // A kernel bug must not take the other fibers' grants down with it;
      // the fiber's requests are rejected and the fault shows up in metrics.
      for (std::size_t i = lo; i < hi; ++i) {
        decisions[soa_.origin[i]] =
            PortDecision::reject(RejectReason::kInternalError);
      }
    }
    if (trace_fibers) {
      obs::TraceEvent& e = fiber_events_[fiber];
      e.ts_ns = fiber_t0;
      e.dur_ns = util::now_ns() - fiber_t0;
      e.slot = trace_slot_;
      e.a = hi - lo;
      e.b = granted;
      e.fiber = static_cast<std::int32_t>(fiber);
      e.kind = obs::EventKind::kFiberSchedule;
      e.detail = degraded ? 1 : 0;
      e.tid = util::ThreadPool::worker_index();
    }
  };

  {
    const obs::StageTimer fanout_timer(telemetry_, obs::Stage::kFanout,
                                       trace_slot_);
    if (pool != nullptr) {
      pool->parallel_for(0, n_fibers, schedule_fiber);
    } else {
      for (std::size_t fiber = 0; fiber < n_fibers; ++fiber) {
        schedule_fiber(fiber);
      }
    }
  }
  if (trace_fibers) telemetry_->append(fiber_events_);
  for (auto& d : decisions) {
    if (!d.granted && d.reason == RejectReason::kUndecided) {
      WDM_DCHECK(!"schedule_slot left a request undecided");
      d = PortDecision::reject(RejectReason::kInternalError);
    }
  }
}

std::vector<PortDecision> DistributedScheduler::schedule_slot(
    std::span<const SlotRequest> requests,
    const std::vector<std::vector<std::uint8_t>>* availability,
    const std::vector<HealthMask>* health, util::ThreadPool* pool) {
  std::vector<PortDecision> decisions(requests.size());
  if (availability != nullptr &&
      availability->size() != static_cast<std::size_t>(n_output_fibers())) {
    for (auto& d : decisions) {
      d = PortDecision::reject(RejectReason::kBadAvailabilityMask);
    }
    return decisions;
  }
  // A ragged inner mask is caught per fiber by the port scheduler, which
  // rejects only that fiber's requests with kBadAvailabilityMask.
  const auto row_of = [&](std::size_t fiber) {
    return availability != nullptr
               ? std::span<const std::uint8_t>((*availability)[fiber])
               : std::span<const std::uint8_t>{};
  };
  const auto no_bits = [](std::size_t) {
    return std::span<const std::uint64_t>{};
  };
  schedule_slot_impl(requests, row_of, no_bits, health, pool, decisions,
                     nullptr);
  return decisions;
}

void DistributedScheduler::schedule_slot_into(
    std::span<const SlotRequest> requests, AvailabilityView availability,
    const std::vector<HealthMask>* health, util::ThreadPool* pool,
    std::span<PortDecision> decisions, SlotBudget* budget) {
  WDM_CHECK_MSG(decisions.size() == requests.size(),
                "one decision slot per request");
  if (!availability.empty() && (availability.n_fibers() != n_output_fibers() ||
                                availability.k() != k())) {
    for (auto& d : decisions) {
      d = PortDecision::reject(RejectReason::kBadAvailabilityMask);
    }
    return;
  }
  const auto row_of = [&](std::size_t fiber) {
    return availability.empty()
               ? std::span<const std::uint8_t>{}
               : availability.row(static_cast<std::int32_t>(fiber));
  };
  const auto bits_of = [&](std::size_t fiber) {
    return availability.empty()
               ? std::span<const std::uint64_t>{}
               : availability.bits_row(static_cast<std::int32_t>(fiber));
  };
  schedule_slot_impl(requests, row_of, bits_of, health, pool, decisions,
                     budget);
}

void DistributedScheduler::save_state(util::SnapshotWriter& w) const {
  w.u64(ports_.size());
  for (const auto& port : ports_) port.save_state(w);
}

void DistributedScheduler::restore_state(util::SnapshotReader& r) {
  const std::uint64_t n = r.u64();
  WDM_CHECK_MSG(n == ports_.size(),
                "snapshot port count does not match this scheduler's N");
  for (auto& port : ports_) port.restore_state(r);
}

}  // namespace wdm::core
