#include "core/distributed.hpp"

#include "util/check.hpp"

namespace wdm::core {

DistributedScheduler::DistributedScheduler(std::int32_t n_output_fibers,
                                           ConversionScheme scheme,
                                           Algorithm algorithm,
                                           Arbitration arbitration,
                                           std::uint64_t seed)
    : scheme_(std::move(scheme)) {
  WDM_CHECK_MSG(n_output_fibers > 0, "need at least one output fiber");
  util::Rng seeder(seed);
  ports_.reserve(static_cast<std::size_t>(n_output_fibers));
  for (std::int32_t fiber = 0; fiber < n_output_fibers; ++fiber) {
    ports_.emplace_back(scheme_, algorithm, arbitration, seeder.next());
  }
}

OutputPortScheduler& DistributedScheduler::port(std::int32_t fiber) {
  WDM_CHECK(fiber >= 0 && fiber < n_output_fibers());
  return ports_[static_cast<std::size_t>(fiber)];
}

void DistributedScheduler::set_converter_budget(std::int32_t budget) {
  for (auto& port : ports_) port.set_converter_budget(budget);
}

std::vector<PortDecision> DistributedScheduler::schedule_slot(
    std::span<const SlotRequest> requests,
    const std::vector<std::vector<std::uint8_t>>* availability,
    const std::vector<HealthMask>* health, util::ThreadPool* pool) {
  const auto n_fibers = static_cast<std::size_t>(n_output_fibers());
  std::vector<PortDecision> decisions(requests.size());

  // Externally supplied data is rejected per-request, never with a throw: a
  // malformed SlotRequest (or a wrong-shaped availability or health vector)
  // costs the affected grants only, not the slot or the process.
  if (availability != nullptr && availability->size() != n_fibers) {
    for (auto& d : decisions) {
      d = PortDecision::reject(RejectReason::kBadAvailabilityMask);
    }
    return decisions;
  }
  if (health != nullptr && health->size() != n_fibers) {
    for (auto& d : decisions) {
      d = PortDecision::reject(RejectReason::kBadHealthMask);
    }
    return decisions;
  }

  // Partition the slot's requests into the N destination subsets. No request
  // appears in two subsets, so the per-fiber schedules are independent.
  // Per-request field validation happens inside the per-port scheduler. A
  // faulted destination fiber outranks field validation (the fiber is down,
  // nothing destined to it is inspected), but not output-fiber validity —
  // an out-of-range fiber has no health to consult.
  std::vector<std::vector<Request>> per_fiber(n_fibers);
  std::vector<std::vector<std::size_t>> origin(n_fibers);
  for (std::size_t idx = 0; idx < requests.size(); ++idx) {
    const auto& r = requests[idx];
    if (r.output_fiber < 0 || r.output_fiber >= n_output_fibers()) {
      decisions[idx] = PortDecision::reject(RejectReason::kInvalidOutputFiber);
      continue;
    }
    if (health != nullptr &&
        (*health)[static_cast<std::size_t>(r.output_fiber)].fiber_faulted) {
      decisions[idx] = PortDecision::reject(RejectReason::kFaulted);
      continue;
    }
    if (r.priority < 0) {
      decisions[idx] = PortDecision::reject(RejectReason::kInvalidPriority);
      continue;
    }
    per_fiber[static_cast<std::size_t>(r.output_fiber)].push_back(
        Request{r.input_fiber, r.wavelength, r.id, r.duration});
    origin[static_cast<std::size_t>(r.output_fiber)].push_back(idx);
  }

  const auto schedule_fiber = [&](std::size_t fiber) {
    if (per_fiber[fiber].empty()) return;
    const std::span<const std::uint8_t> mask =
        availability != nullptr ? std::span<const std::uint8_t>((*availability)[fiber])
                                : std::span<const std::uint8_t>{};
    const HealthMask* fiber_health =
        health != nullptr ? &(*health)[fiber] : nullptr;
    try {
      const auto fiber_decisions =
          ports_[fiber].schedule(per_fiber[fiber], mask, fiber_health);
      for (std::size_t i = 0; i < fiber_decisions.size(); ++i) {
        decisions[origin[fiber][i]] = fiber_decisions[i];
      }
    } catch (...) {
      // A kernel bug must not take the other fibers' grants down with it;
      // the fiber's requests are rejected and the fault shows up in metrics.
      for (const std::size_t idx : origin[fiber]) {
        decisions[idx] = PortDecision::reject(RejectReason::kInternalError);
      }
    }
  };

  if (pool != nullptr) {
    pool->parallel_for(0, n_fibers, schedule_fiber);
  } else {
    for (std::size_t fiber = 0; fiber < n_fibers; ++fiber) {
      schedule_fiber(fiber);
    }
  }
  for (auto& d : decisions) {
    if (!d.granted && d.reason == RejectReason::kUndecided) {
      WDM_DCHECK(!"schedule_slot left a request undecided");
      d = PortDecision::reject(RejectReason::kInternalError);
    }
  }
  return decisions;
}

}  // namespace wdm::core
