#include "core/distributed.hpp"

#include "util/check.hpp"

namespace wdm::core {

DistributedScheduler::DistributedScheduler(std::int32_t n_output_fibers,
                                           ConversionScheme scheme,
                                           Algorithm algorithm,
                                           Arbitration arbitration,
                                           std::uint64_t seed)
    : scheme_(std::move(scheme)) {
  WDM_CHECK_MSG(n_output_fibers > 0, "need at least one output fiber");
  util::Rng seeder(seed);
  ports_.reserve(static_cast<std::size_t>(n_output_fibers));
  for (std::int32_t fiber = 0; fiber < n_output_fibers; ++fiber) {
    ports_.emplace_back(scheme_, algorithm, arbitration, seeder.next());
  }
}

OutputPortScheduler& DistributedScheduler::port(std::int32_t fiber) {
  WDM_CHECK(fiber >= 0 && fiber < n_output_fibers());
  return ports_[static_cast<std::size_t>(fiber)];
}

void DistributedScheduler::set_converter_budget(std::int32_t budget) {
  for (auto& port : ports_) port.set_converter_budget(budget);
}

std::vector<PortDecision> DistributedScheduler::schedule_slot(
    std::span<const SlotRequest> requests,
    const std::vector<std::vector<std::uint8_t>>* availability,
    util::ThreadPool* pool) {
  const auto n_fibers = static_cast<std::size_t>(n_output_fibers());
  if (availability != nullptr) {
    WDM_CHECK_MSG(availability->size() == n_fibers,
                  "need one availability mask per output fiber");
  }

  // Partition the slot's requests into the N destination subsets. No request
  // appears in two subsets, so the per-fiber schedules are independent.
  std::vector<std::vector<Request>> per_fiber(n_fibers);
  std::vector<std::vector<std::size_t>> origin(n_fibers);
  for (std::size_t idx = 0; idx < requests.size(); ++idx) {
    const auto& r = requests[idx];
    WDM_CHECK_MSG(r.output_fiber >= 0 &&
                      r.output_fiber < n_output_fibers(),
                  "request destined to a nonexistent output fiber");
    per_fiber[static_cast<std::size_t>(r.output_fiber)].push_back(
        Request{r.input_fiber, r.wavelength, r.id, r.duration});
    origin[static_cast<std::size_t>(r.output_fiber)].push_back(idx);
  }

  std::vector<PortDecision> decisions(requests.size());
  const auto schedule_fiber = [&](std::size_t fiber) {
    if (per_fiber[fiber].empty()) return;
    const std::span<const std::uint8_t> mask =
        availability != nullptr ? std::span<const std::uint8_t>((*availability)[fiber])
                                : std::span<const std::uint8_t>{};
    const auto fiber_decisions = ports_[fiber].schedule(per_fiber[fiber], mask);
    for (std::size_t i = 0; i < fiber_decisions.size(); ++i) {
      decisions[origin[fiber][i]] = fiber_decisions[i];
    }
  };

  if (pool != nullptr) {
    pool->parallel_for(0, n_fibers, schedule_fiber);
  } else {
    for (std::size_t fiber = 0; fiber < n_fibers; ++fiber) {
      schedule_fiber(fiber);
    }
  }
  return decisions;
}

}  // namespace wdm::core
