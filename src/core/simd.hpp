// Runtime dispatch for the mask/SIMD slot kernels (docs/ALGORITHMS.md §9).
//
// The masked kernels are decision-for-decision identical to the scalar
// walks — they only skip iterations the scalar loop provably no-ops on — so
// the toggle is a pure performance switch, never a behavioral one. Three
// layers of control, strongest first:
//  * set_simd_mode()            — programmatic override (tests, benchmarks);
//  * the WDM_SIMD env variable  — "off" / "0" / "scalar" forces the scalar
//    path (the CI leg that keeps it exercised), anything else enables masks;
//  * the default                — masked kernels on (the portable
//    std::popcount / std::countr_zero baseline runs on every target).
//
// AVX2 is a second, independent layer *inside* the masked path: byte-row →
// bit-row packing uses the vector unit when the CPU has it (detected once at
// runtime), with bit-identical portable packing otherwise.
#pragma once

#include <cstdint>

namespace wdm::core {

enum class SimdMode : std::uint8_t {
  kAuto,    ///< resolve from WDM_SIMD, default = masked kernels on
  kScalar,  ///< force the scalar reference kernels
  kMask,    ///< force the masked (word-at-a-time) kernels
};

/// Programmatic override; kAuto returns control to the environment/default.
void set_simd_mode(SimdMode mode) noexcept;
SimdMode simd_mode() noexcept;

/// True iff the masked kernel path is active under the current mode.
bool simd_enabled() noexcept;

/// True iff the AVX2 packing path is compiled in and the CPU supports it.
bool avx2_available() noexcept;

/// Human-readable backend for bench/report output: "scalar", "mask", or
/// "mask+avx2".
const char* simd_backend() noexcept;

}  // namespace wdm::core
