// Limited-range wavelength conversion schemes (Section II.A, Figure 2).
//
// A converter can translate input wavelength λi to a set of adjacent output
// wavelengths: `e` on its minus side and `f` on its plus side, so the
// conversion degree is d = e + f + 1. The paper studies two shapes:
//
//  * circular symmetric    — adjacency of λi is [i-e, i+f] mod k (wraps);
//  * non-circular symmetric — adjacency is [max(0,i-e), min(k-1,i+f)]
//    (wavelengths near an end cannot reach the other end).
//
// Full-range conversion is the special case d = k.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/wavelength.hpp"
#include "graph/bipartite_graph.hpp"
#include "graph/convex.hpp"

namespace wdm::core {

enum class ConversionKind : std::uint8_t {
  kCircular,
  kNonCircular,
};

class ConversionScheme {
 public:
  /// Circular symmetric conversion on k wavelengths (Fig. 2a).
  static ConversionScheme circular(std::int32_t k, std::int32_t e, std::int32_t f);
  /// Non-circular symmetric conversion on k wavelengths (Fig. 2b).
  static ConversionScheme non_circular(std::int32_t k, std::int32_t e,
                                       std::int32_t f);
  /// Symmetric-degree helper: splits d-1 as evenly as possible (e gets the
  /// extra slot for even d, matching the paper's e = f examples for odd d).
  static ConversionScheme symmetric(ConversionKind kind, std::int32_t k,
                                    std::int32_t d);
  /// Full-range conversion: every wavelength converts to every other (d = k).
  static ConversionScheme full_range(std::int32_t k);
  /// No conversion at all (d = 1): the wavelength-continuity constraint.
  static ConversionScheme none(std::int32_t k, ConversionKind kind);

  ConversionKind kind() const noexcept { return kind_; }
  std::int32_t k() const noexcept { return k_; }
  std::int32_t e() const noexcept { return e_; }
  std::int32_t f() const noexcept { return f_; }
  /// Conversion degree d = e + f + 1 (capped by k).
  std::int32_t degree() const noexcept { return d_; }
  /// True iff every wavelength reaches every channel. Only circular schemes
  /// can be full-range: non-circular adjacency is clipped at the ends, so
  /// even d = k leaves edge wavelengths short-ranged.
  bool is_full_range() const noexcept {
    return kind_ == ConversionKind::kCircular && d_ == k_;
  }

  /// True iff input wavelength `in` can be converted to output channel `out`.
  /// Inline: this is the per-edge predicate of every kernel's inner loop.
  bool can_convert(Wavelength in, Channel out) const noexcept {
    if (kind_ == ConversionKind::kCircular) {
      return fwd(adjacency_start(in), out, k_) < d_;
    }
    return out >= in - e_ && out <= in + f_;
  }

  /// Adjacency interval of `in` for non-circular schemes (plain, never wraps).
  graph::Interval adjacency_plain(Wavelength in) const;

  /// Adjacency of `in` for circular schemes: first channel (the minus end
  /// (in - e) mod k) plus run length d; the run wraps mod k.
  Channel adjacency_start(Wavelength in) const noexcept {
    return mod_k(static_cast<std::int64_t>(in) - e_, k_);
  }

  /// The d adjacent channels of `in`, ordered from the minus side to the plus
  /// side — the order in which δ(u) of Section IV.C counts (δ = position + 1).
  std::vector<Channel> adjacency_list(Wavelength in) const;

  /// adjacency_list(in)[idx] without materialising the list — the per-slot
  /// kernels iterate adjacency with this so the hot path never allocates.
  /// `idx` must be in [0, degree()).
  Channel adjacency_at(Wavelength in, std::int32_t idx) const noexcept {
    if (kind_ == ConversionKind::kCircular) {
      return mod_k(static_cast<std::int64_t>(in) - e_ + idx, k_);
    }
    return std::max<std::int32_t>(0, in - e_) + idx;
  }

  /// Number of adjacent channels of `in` (= degree() for circular schemes;
  /// clipped at the wavelength range ends for non-circular ones).
  std::int32_t adjacency_count(Wavelength in) const noexcept {
    if (kind_ == ConversionKind::kCircular) return d_;
    return std::min<std::int32_t>(k_ - 1, in + f_) -
           std::max<std::int32_t>(0, in - e_) + 1;
  }

  /// The conversion graph of Figure 2: left = input wavelengths, right =
  /// output wavelengths, an edge wherever conversion is possible.
  graph::BipartiteGraph conversion_graph() const;

  friend bool operator==(const ConversionScheme&,
                         const ConversionScheme&) = default;

 private:
  ConversionScheme(ConversionKind kind, std::int32_t k, std::int32_t e,
                   std::int32_t f);

  ConversionKind kind_;
  std::int32_t k_;
  std::int32_t e_;
  std::int32_t f_;
  std::int32_t d_;
};

}  // namespace wdm::core
