#include "core/priority.hpp"

#include "core/break_first_available.hpp"
#include "core/first_available.hpp"
#include "core/full_range.hpp"
#include "util/check.hpp"

namespace wdm::core {

ChannelAssignment assign_maximum(const RequestVector& requests,
                                 const ConversionScheme& scheme,
                                 std::span<const std::uint8_t> available) {
  if (scheme.is_full_range()) {
    return full_range_schedule(requests, available);
  }
  if (scheme.kind() == ConversionKind::kCircular) {
    return break_first_available(requests, scheme, available);
  }
  return first_available(requests, scheme, available);
}

PrioritySchedule priority_schedule(const std::vector<RequestVector>& classes,
                                   const ConversionScheme& scheme,
                                   std::span<const std::uint8_t> available) {
  WDM_CHECK_MSG(!classes.empty(), "need at least one priority class");
  WDM_CHECK_MSG(available.empty() ||
                    static_cast<std::int32_t>(available.size()) == scheme.k(),
                "availability mask must have one entry per channel");

  const std::int32_t k = scheme.k();
  std::vector<std::uint8_t> residual(available.begin(), available.end());
  if (residual.empty()) residual.assign(static_cast<std::size_t>(k), 1);

  PrioritySchedule out{ChannelAssignment(k), {}, {}};
  out.per_class.reserve(classes.size());
  out.granted_per_class.reserve(classes.size());

  for (const auto& class_requests : classes) {
    WDM_CHECK_MSG(class_requests.k() == k,
                  "every class vector must match the scheme's k");
    ChannelAssignment assignment =
        assign_maximum(class_requests, scheme, residual);
    for (Channel u = 0; u < k; ++u) {
      const Wavelength w = assignment.source[static_cast<std::size_t>(u)];
      if (w == kNone) continue;
      // A lower class can never see a channel a higher class took.
      residual[static_cast<std::size_t>(u)] = 0;
      out.combined.source[static_cast<std::size_t>(u)] = w;
      out.combined.granted += 1;
    }
    out.granted_per_class.push_back(assignment.granted);
    out.per_class.push_back(std::move(assignment));
  }
  return out;
}

}  // namespace wdm::core
