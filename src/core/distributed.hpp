// The distributed scheduler over all N output fibers (Section I).
//
// The decisions for different output fibers are independent — no request
// belongs to two destination subsets — so a slot's schedule is N independent
// per-fiber schedules. In a switch these run on per-fiber hardware; here they
// run serially or on a thread pool, and the per-slot work stays O(k) / O(dk)
// per fiber regardless of N (the property experiment E2 measures).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/availability.hpp"
#include "core/conversion.hpp"
#include "core/request.hpp"
#include "core/scheduler.hpp"
#include "core/slot_batch.hpp"
#include "obs/telemetry.hpp"
#include "util/threadpool.hpp"

namespace wdm::core {

/// A request in flight through the whole interconnect: a Request plus its
/// destination fiber.
struct SlotRequest {
  std::int32_t input_fiber = 0;
  Wavelength wavelength = 0;
  std::int32_t output_fiber = 0;
  std::uint64_t id = 0;
  std::int32_t duration = 1;  ///< holding time in slots (Section V)
  std::int32_t priority = 0;  ///< QoS class, 0 = highest (§VI extension)
};

/// Per-slot work budget for deadline-bounded degradation. One SlotBudget is
/// shared by every schedule_slot_into call of a slot (retries, per-class
/// batches); `ops_charged` accumulates across them, so the budget bounds the
/// slot, not the call.
///
/// The op-count proxy is deterministic (the paper's complexity model, in
/// "channel visits"): scheduling a fiber with pending requests costs d*k for
/// the exact circular BFA sweep and k for every O(k) kernel (FA, the
/// single-break approximation, full-range). Ports whose exact cost no longer
/// fits are downgraded in charge order — deterministically, before any
/// scheduling work runs, so the same slot degrades the same ports with or
/// without a thread pool. The wall-clock slot deadline lives one layer up
/// (sim::Interconnect judges the whole step against it and latches
/// force_degraded for the following slots), keeping this budget — and thus
/// every per-fiber decision — free of clock reads.
struct SlotBudget {
  std::uint64_t op_budget = 0;     ///< op-count ceiling per slot; 0 = none
  bool force_degraded = false;     ///< hysteresis hold: degrade every port
  /// Fairness rotation: the budget plan charges fibers in the rotated order
  /// (rotation, rotation+1, ... mod N) so a partially blown budget does not
  /// always degrade the same low-numbered fibers. Deterministic — the
  /// interconnect derives it from its slot counter, which is checkpointed.
  std::int32_t rotation = 0;
  /// Optional explicit charge order: N fiber indices, a permutation of
  /// [0, N). When non-null the budget plan charges fibers in this order
  /// instead of the rotated ring — the interconnect puts fibers with the
  /// deepest ingress backlog first, so the ports a blown budget downgrades
  /// are the ones with the least queued demand. Must be derived from
  /// checkpointed state only (replays rebuild it identically).
  const std::int32_t* charge_order = nullptr;

  // Outputs, accumulated across the slot's scheduling calls.
  std::uint64_t ops_charged = 0;        ///< cost actually charged
  std::uint64_t ops_exact_estimate = 0; ///< what exact-everywhere would cost
  std::int32_t degraded_ports = 0;      ///< degradable ports downgraded

  bool active() const noexcept {
    return op_budget > 0 || force_degraded;
  }
};

class DistributedScheduler {
 public:
  DistributedScheduler(std::int32_t n_output_fibers, ConversionScheme scheme,
                       Algorithm algorithm = Algorithm::kAuto,
                       Arbitration arbitration = Arbitration::kRoundRobin,
                       std::uint64_t seed = 1);

  std::int32_t n_output_fibers() const noexcept {
    return static_cast<std::int32_t>(ports_.size());
  }
  std::int32_t k() const noexcept { return scheme_.k(); }
  const ConversionScheme& scheme() const noexcept { return scheme_; }
  OutputPortScheduler& port(std::int32_t fiber);

  /// Sets the per-fiber converter pool size on every port (only meaningful
  /// with Algorithm::kSparseBudgeted).
  void set_converter_budget(std::int32_t budget);

  /// Pre-sizes every port's arbitration scratch for slots of up to
  /// `max_requests_per_slot` requests (the worst case is all of them at one
  /// port). Opt-in: costs O(N * max) memory up front, in exchange for a
  /// steady state with zero heap allocations from the very first slot —
  /// without it, rare per-port high-water marks still reallocate
  /// (OutputPortScheduler::reserve_batch).
  void reserve_batches(std::size_t max_requests_per_slot);

  /// Schedules one slot. `availability`, if non-null, holds one size-k mask
  /// per output fiber (occupied channels, Section V). `health`, if non-null,
  /// holds one HealthMask per output fiber (hardware faults): requests to a
  /// faulted fiber are rejected with RejectReason::kFaulted, and channel /
  /// converter faults shrink each fiber's matching to the surviving request
  /// graph while staying maximum on it. If `pool` is non-null the per-fiber
  /// schedules run concurrently. The result is parallel to `requests`.
  ///
  /// Robustness contract: malformed inputs (out-of-range fiber or wavelength,
  /// nonpositive duration, negative priority, wrong-shaped availability or
  /// health vectors) never throw — each affected request comes back rejected
  /// with a RejectReason, and well-formed requests in the same slot are
  /// scheduled normally.
  std::vector<PortDecision> schedule_slot(
      std::span<const SlotRequest> requests,
      const std::vector<std::vector<std::uint8_t>>* availability = nullptr,
      const std::vector<HealthMask>* health = nullptr,
      util::ThreadPool* pool = nullptr);

  /// As schedule_slot, with a flat N×k availability plane and caller-owned
  /// decisions (one entry per request). Decision-for-decision identical to
  /// schedule_slot(); the fast path of the slot pipeline — the request
  /// partition is a counting-sort CSR over reusable arenas, so the steady
  /// state performs zero heap allocations. An empty view means all free; a
  /// view whose shape disagrees with (N, k) rejects every request with
  /// kBadAvailabilityMask, mirroring the nested-vector overload.
  /// `budget`, if non-null, applies deadline-bounded degradation: ports the
  /// slot's remaining budget cannot schedule exactly fall back to the O(k)
  /// approximation (SlotBudget above; a no-op for ports that are not
  /// degradable()). Grants stay a valid matching either way — degradation
  /// trades matching size (bounded by Theorem 3), never validity.
  void schedule_slot_into(std::span<const SlotRequest> requests,
                          AvailabilityView availability,
                          const std::vector<HealthMask>* health,
                          util::ThreadPool* pool,
                          std::span<PortDecision> decisions,
                          SlotBudget* budget = nullptr);

  /// Checkpoint of every port's mutable state (arbitration RNGs, round-robin
  /// cursors), in fiber order.
  void save_state(util::SnapshotWriter& w) const;
  void restore_state(util::SnapshotReader& r);

  /// Attaches (or detaches, with nullptr) a trace recorder. The scheduler
  /// records kStage spans for its partition and fan-out phases at kSlots
  /// detail, and one kFiberSchedule span per scheduled fiber at kFibers —
  /// staged in a preallocated per-fiber array (each entry written by the one
  /// worker that owns that fiber) and merged after the join, so tracing adds
  /// no locks and no allocations to the warm path. Telemetry never alters
  /// decisions or RNG streams, and none of it enters save_state.
  void set_telemetry(obs::TraceRecorder* recorder) noexcept {
    telemetry_ = recorder;
  }
  /// Slot index stamped on this scheduler's trace events (the scheduler has
  /// no slot counter of its own; the interconnect sets it each step).
  void set_trace_slot(std::uint64_t slot) noexcept { trace_slot_ = slot; }

 private:
  /// Shared core of both overloads: `row_of(fiber)` yields that fiber's
  /// size-k mask (or an empty span for "all free"), `bits_of(fiber)` the
  /// packed bit row (or an empty span when the caller has no bit plane).
  template <typename RowFn, typename BitsFn>
  void schedule_slot_impl(std::span<const SlotRequest> requests, RowFn&& row_of,
                          BitsFn&& bits_of,
                          const std::vector<HealthMask>* health,
                          util::ThreadPool* pool,
                          std::span<PortDecision> decisions,
                          SlotBudget* budget);

  ConversionScheme scheme_;
  std::vector<OutputPortScheduler> ports_;

  // Reusable per-slot scratch: CSR partition of the slot's requests into the
  // N destination subsets (stable counting sort keeps arrival order within a
  // fiber), plus per-fiber decision staging. Capacity persists across slots.
  // `soa_` holds the CSR offsets and origin column in both modes; its data
  // columns are filled instead of `flat_requests_` when the masked/SoA path
  // is enabled (healthy hardware + core/simd.hpp allows it), so the per-port
  // hot loop touches 4-byte columns rather than 24-byte Request structs.
  SlotBatchSoA soa_;
  std::vector<Request> flat_requests_;       // partitioned requests, AoS mode
  std::vector<std::uint32_t> fiber_cursor_;  // fill cursors for the sort
  std::vector<PortDecision> csr_decisions_;  // per-fiber results, CSR order
  std::vector<std::uint8_t> degrade_flags_;  // per-fiber degradation plan

  obs::TraceRecorder* telemetry_ = nullptr;
  std::uint64_t trace_slot_ = 0;
  std::vector<obs::TraceEvent> fiber_events_;  // per-fiber staging, size N
};

}  // namespace wdm::core
