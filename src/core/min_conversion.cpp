#include "core/min_conversion.hpp"

#include "core/request_graph.hpp"
#include "graph/mincost_matching.hpp"
#include "util/check.hpp"

namespace wdm::core {

std::int32_t conversions_used(const ChannelAssignment& assignment) {
  std::int32_t conversions = 0;
  for (Channel u = 0; u < assignment.k(); ++u) {
    const Wavelength w = assignment.source[static_cast<std::size_t>(u)];
    if (w != kNone && w != u) conversions += 1;
  }
  return conversions;
}

MinConversionResult min_conversion_schedule(
    const RequestVector& requests, const ConversionScheme& scheme,
    std::span<const std::uint8_t> available) {
  WDM_CHECK_MSG(requests.k() == scheme.k(),
                "request vector and scheme disagree on k");
  std::vector<std::uint8_t> mask(available.begin(), available.end());
  const RequestGraph g(scheme, requests, std::move(mask));
  const auto bipartite = g.to_bipartite();

  const auto cost = [&g](graph::VertexId a, graph::VertexId b) -> std::int32_t {
    return g.wavelength_of(a) == static_cast<Wavelength>(b) ? 0 : 1;
  };
  const auto costed = graph::min_cost_maximum_matching(bipartite, cost);

  MinConversionResult out{ChannelAssignment(scheme.k()), 0};
  for (Channel u = 0; u < scheme.k(); ++u) {
    const graph::VertexId j = costed.matching.left_of(u);
    if (j == graph::kNoVertex) continue;
    out.assignment.source[static_cast<std::size_t>(u)] = g.wavelength_of(j);
    out.assignment.granted += 1;
  }
  out.conversions = conversions_used(out.assignment);
  WDM_DCHECK(out.conversions == static_cast<std::int32_t>(costed.total_cost));
  return out;
}

}  // namespace wdm::core
