#include "core/first_available.hpp"

#include "core/wave_mask.hpp"
#include "util/check.hpp"

namespace wdm::core {

ChannelAssignment first_available(const RequestVector& requests,
                                  const ConversionScheme& scheme,
                                  std::span<const std::uint8_t> available) {
  ChannelAssignment out(scheme.k());
  first_available_into(requests, scheme, available, out);
  return out;
}

void first_available_into(const RequestVector& requests,
                          const ConversionScheme& scheme,
                          std::span<const std::uint8_t> available,
                          ChannelAssignment& out) {
  WDM_CHECK_MSG(scheme.kind() == ConversionKind::kNonCircular,
                "first_available requires a non-circular scheme (Theorem 1); "
                "use break_first_available for circular conversion");
  WDM_CHECK_MSG(requests.k() == scheme.k(),
                "request vector and scheme disagree on k");
  WDM_CHECK_MSG(available.empty() ||
                    static_cast<std::int32_t>(available.size()) == scheme.k(),
                "availability mask must have one entry per channel");

  const std::int32_t k = scheme.k();
  const std::int32_t e = scheme.e();
  const std::int32_t f = scheme.f();
  out.reset(k);

  // Pointer over left vertices in request-vector form: wavelength `w` with
  // `remaining` unscheduled requests. All lower wavelengths are either fully
  // granted or dead (their interval ended before the current channel).
  Wavelength w = 0;
  std::int32_t remaining = requests.count(0);

  for (Channel u = 0; u < k; ++u) {
    if (!available.empty() && available[static_cast<std::size_t>(u)] == 0) {
      continue;  // Section V: occupied channel = deleted right vertex
    }
    // Drop exhausted wavelengths and those whose END value (w + f) already
    // passed u — they can never be matched to any later channel either.
    while (w < k && (remaining == 0 || w + f < u)) {
      ++w;
      remaining = w < k ? requests.count(w) : 0;
    }
    if (w == k) break;
    // `w` is the first wavelength with a pending request. It is adjacent to
    // u iff its BEGIN value (w - e) has been reached; if it has not, no
    // pending wavelength is adjacent to u (BEGIN values only grow).
    if (w - e <= u) {
      WDM_DCHECK(scheme.can_convert(w, u));
      out.source[static_cast<std::size_t>(u)] = w;
      out.granted += 1;
      remaining -= 1;
    }
  }
}

void first_available_masked_into(const RequestVector& requests,
                                 const ConversionScheme& scheme,
                                 std::span<const std::uint64_t> avail_words,
                                 std::span<const std::uint64_t> nonempty_words,
                                 ChannelAssignment& out) {
  WDM_CHECK_MSG(scheme.kind() == ConversionKind::kNonCircular,
                "first_available requires a non-circular scheme (Theorem 1); "
                "use break_first_available for circular conversion");
  WDM_CHECK_MSG(requests.k() == scheme.k(),
                "request vector and scheme disagree on k");
  const std::int32_t k = scheme.k();
  WDM_DCHECK(avail_words.size() == mask_words(k));
  WDM_DCHECK(nonempty_words.size() == mask_words(k));
  const std::int32_t e = scheme.e();
  const std::int32_t f = scheme.f();
  const std::uint64_t* avail = avail_words.data();
  const std::uint64_t* nonempty = nonempty_words.data();
  out.reset(k);

  // The scalar sweep's two pointers, with both no-op walks replaced by
  // find-next-set jumps: the channel loop skips occupied channels (the
  // scalar `continue`s on them) and the wavelength pointer skips empty
  // wavelengths (the scalar steps through them without exiting its while —
  // it only stops on a wavelength with remaining > 0 and w + f >= u, which
  // is exactly where the jump lands). The grant sequence is identical.
  Wavelength w = 0;
  std::int32_t remaining = requests.count(0);
  for (Channel u = find_next_set(avail, k, 0); u < k;
       u = find_next_set(avail, k, u + 1)) {
    while (w < k && (remaining == 0 || w + f < u)) {
      w = find_next_set(nonempty, k, w + 1);
      remaining = w < k ? requests.count(w) : 0;
    }
    if (w == k) break;
    if (w - e <= u) {
      WDM_DCHECK(scheme.can_convert(w, u));
      out.source[static_cast<std::size_t>(u)] = w;
      out.granted += 1;
      remaining -= 1;
    }
  }
}

}  // namespace wdm::core
