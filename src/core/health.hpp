// Hardware health state for one output fiber, and the fault reduction that
// keeps the scheduling kernels maximum when hardware degrades.
//
// The paper's Figure-1 architecture gives every output channel a dedicated
// limited-range converter; the schedulers assume all of them (and the
// channels and fibers themselves) are healthy. At production scale they are
// not, so three fault classes become first-class scheduling inputs:
//
//  * converter fault — the channel's converter is dead, but the channel
//    itself still passes light: only a request already on the channel's
//    wavelength can use it (the adjacency collapses to d = 1);
//  * channel fault — the output channel (laser / transceiver) is dead:
//    nothing can use it;
//  * fiber fault — the whole output fiber is cut: every request destined
//    to it is rejected with RejectReason::kFaulted.
//
// Degraded scheduling stays a *maximum matching on the surviving request
// graph* via a reduction instead of new kernels (see apply_health): a
// converter-faulted free channel u has edges only to wavelength-u requests,
// and an exchange argument shows some maximum matching grants u to one of
// them whenever one exists — so pre-granting that pair and deleting u
// preserves the maximum. Channel deletion is the availability-mask deletion
// the kernels already handle exactly (Section V of the paper; fuzz-verified
// in PR 1). The oracle fuzzer re-proves the whole reduction differentially
// against Hopcroft–Karp on the explicit fault-reduced graph.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/request.hpp"
#include "core/wavelength.hpp"

namespace wdm::core {

/// Health of one output wavelength channel (converter + transceiver).
enum class ChannelHealth : std::uint8_t {
  kHealthy = 0,
  kConverterFaulted,  ///< channel up, converter down: only wavelength u -> u
  kChannelFaulted,    ///< channel down: unusable by every wavelength
};

/// Health of one output fiber: a fiber-cut flag plus per-channel states.
/// An empty `channels` vector means every channel is healthy.
struct HealthMask {
  bool fiber_faulted = false;
  std::vector<ChannelHealth> channels;

  /// All-healthy fast-path predicate (empty channels counts as healthy).
  bool all_healthy() const noexcept;

  /// Health of channel `u` (empty channels vector = healthy).
  ChannelHealth channel(Channel u) const noexcept {
    return channels.empty() ? ChannelHealth::kHealthy
                            : channels[static_cast<std::size_t>(u)];
  }

  static HealthMask healthy(std::int32_t k);

  friend bool operator==(const HealthMask&, const HealthMask&) = default;
};

/// The fault reduction of one per-fiber scheduling instance.
struct HealthReduction {
  /// Request counts after the converter-fault pre-grants were taken out.
  RequestVector requests;
  /// Effective availability mask: input mask with every faulted channel
  /// (converter or channel fault) removed. Always size k.
  std::vector<std::uint8_t> availability;
  /// pre_granted[u] = 1 iff converter-faulted channel u was pre-granted to a
  /// wavelength-u request (exactly one per such channel).
  std::vector<std::uint8_t> pre_granted;
  std::int32_t pre_grant_count = 0;

  explicit HealthReduction(std::int32_t k)
      : requests(k),
        availability(static_cast<std::size_t>(k), 1),
        pre_granted(static_cast<std::size_t>(k), 0) {}
};

/// Reduces (requests, available, health) to a healthy-hardware instance whose
/// maximum matching, plus the pre-grants, is a maximum matching of the
/// fault-reduced request graph. `available` may be empty (= all free);
/// `health.channels` must be empty or size k; `health.fiber_faulted` yields
/// an all-unavailable reduction with no pre-grants.
HealthReduction apply_health(const RequestVector& requests,
                             std::span<const std::uint8_t> available,
                             const HealthMask& health);

}  // namespace wdm::core
