// Structure-of-arrays slot batch (docs/ALGORITHMS.md §9).
//
// The distributed scheduler's partition stage is a counting sort of the
// slot's requests into N destination subsets. The scalar path scatters
// 24-byte AoS Request structs; the masked path scatters these parallel
// columns instead, because the per-port hot path consumes exactly one of
// them (the wavelength — ids never reach the matching kernels, and the
// remaining fields are only touched by per-request validation, which reads
// its column once). Column entries are CSR-ordered by output fiber
// (`fiber_offsets`), arrival order preserved within a fiber — the same
// layout contract as the AoS partition, so the per-fiber batches are
// identical either way.
#pragma once

#include <cstdint>
#include <vector>

namespace wdm::core {

struct SlotBatchSoA {
  /// CSR offsets over output fibers, size N+1.
  std::vector<std::uint32_t> fiber_offsets;
  /// Original request index of each partitioned entry (results scatter).
  std::vector<std::uint32_t> origin;
  std::vector<std::int32_t> wavelength;
  std::vector<std::int32_t> input_fiber;
  std::vector<std::int32_t> duration;

  void resize_entries(std::size_t n) {
    origin.resize(n);
    wavelength.resize(n);
    input_fiber.resize(n);
    duration.resize(n);
  }
};

}  // namespace wdm::core
