// Packed 64-bit wavelength/channel masks — the word layout behind the
// masked slot kernels (docs/ALGORITHMS.md §9).
//
// A size-k 0/1 byte row (1 = free, the AvailabilityView convention) packs
// into ceil(k/64) little-endian words: bit i of word i/64 is channel i, and
// every bit at position >= k is ZERO. That tail invariant is what lets the
// kernels scan words with std::countr_zero and never step outside [0, k).
//
// The masked sweeps consume two masks per port call: the availability row
// (which channels are free) and the nonempty-wavelength mask (which
// wavelengths have a pending request). Both are plain data — packing is the
// only operation with a vector-unit fast path (AVX2 byte compare + movemask,
// runtime-dispatched; see wave_mask.cpp), everything else is portable <bit>.
#pragma once

#include <bit>
#include <cstdint>
#include <span>

namespace wdm::core {

/// Words needed for a k-bit mask.
constexpr std::size_t mask_words(std::int32_t k) noexcept {
  return (static_cast<std::size_t>(k) + 63) / 64;
}

/// Bit i of the mask (i in [0, k)).
inline bool mask_test(const std::uint64_t* words, std::int32_t i) noexcept {
  return (words[static_cast<std::size_t>(i) >> 6] >>
          (static_cast<std::uint32_t>(i) & 63)) &
         1u;
}

inline void mask_set(std::uint64_t* words, std::int32_t i) noexcept {
  words[static_cast<std::size_t>(i) >> 6] |=
      std::uint64_t{1} << (static_cast<std::uint32_t>(i) & 63);
}

inline void mask_clear(std::uint64_t* words, std::int32_t i) noexcept {
  words[static_cast<std::size_t>(i) >> 6] &=
      ~(std::uint64_t{1} << (static_cast<std::uint32_t>(i) & 63));
}

/// All k bits set, tail bits zero.
inline void mask_fill(std::uint64_t* words, std::int32_t k) noexcept {
  const std::size_t nw = mask_words(k);
  for (std::size_t i = 0; i < nw; ++i) words[i] = ~std::uint64_t{0};
  const std::uint32_t tail = static_cast<std::uint32_t>(k) & 63;
  if (tail != 0) words[nw - 1] = ~std::uint64_t{0} >> (64 - tail);
}

inline void mask_zero(std::uint64_t* words, std::int32_t k) noexcept {
  for (std::size_t i = 0; i < mask_words(k); ++i) words[i] = 0;
}

/// First set bit at index >= `from`, or `bound` if none below `bound`.
/// The scan reads whole words, so bits at positions >= bound may be set —
/// they are clamped, never returned.
inline std::int32_t find_next_set(const std::uint64_t* words,
                                  std::int32_t bound,
                                  std::int32_t from) noexcept {
  if (from >= bound) return bound;
  std::size_t wi = static_cast<std::size_t>(from) >> 6;
  const std::size_t nw = mask_words(bound);
  std::uint64_t cur =
      words[wi] & (~std::uint64_t{0} << (static_cast<std::uint32_t>(from) & 63));
  while (cur == 0) {
    if (++wi == nw) return bound;
    cur = words[wi];
  }
  const std::int32_t idx = static_cast<std::int32_t>(
      (wi << 6) + static_cast<std::size_t>(std::countr_zero(cur)));
  return idx < bound ? idx : bound;
}

/// True iff any bit is set in the half-open range [lo, hi).
inline bool any_set_range(const std::uint64_t* words, std::int32_t lo,
                          std::int32_t hi) noexcept {
  return lo < hi && find_next_set(words, hi, lo) < hi;
}

/// True iff any bit is set in the circular run [start, start+len) mod k.
inline bool any_set_circular(const std::uint64_t* words, std::int32_t k,
                             std::int32_t start, std::int32_t len) noexcept {
  if (len >= k) return any_set_range(words, 0, k);
  if (start + len <= k) return any_set_range(words, start, start + len);
  return any_set_range(words, start, k) ||
         any_set_range(words, 0, start + len - k);
}

/// Number of set bits in the k-bit mask (tail bits are zero by invariant).
inline std::int32_t mask_popcount(const std::uint64_t* words,
                                  std::int32_t k) noexcept {
  std::int32_t n = 0;
  for (std::size_t i = 0; i < mask_words(k); ++i) {
    n += std::popcount(words[i]);
  }
  return n;
}

/// Packs a size-k 0/1 byte row (1 = free) into `words` (mask_words(k) of
/// them), zeroing the tail. An empty `bytes` span means all free, matching
/// the empty-availability convention of the kernels. Uses the AVX2 byte
/// compare when the CPU has it; bit-identical portable packing otherwise.
void pack_availability(std::span<const std::uint8_t> bytes, std::int32_t k,
                       std::uint64_t* words) noexcept;

/// Packs a request-vector count array into the nonempty-wavelength mask:
/// bit w set iff counts[w] > 0.
inline void pack_counts(std::span<const std::int32_t> counts, std::int32_t k,
                        std::uint64_t* words) noexcept {
  mask_zero(words, k);
  for (std::int32_t w = 0; w < k; ++w) {
    if (counts[static_cast<std::size_t>(w)] > 0) mask_set(words, w);
  }
}

#ifdef WDM_HAVE_AVX2_TU
/// AVX2 packing back-end (wave_mask_avx2.cpp, compiled with -mavx2). Only
/// called after a runtime cpu-support check; same output as the portable
/// loop, byte for byte.
void pack_availability_avx2(const std::uint8_t* bytes, std::int32_t k,
                            std::uint64_t* words) noexcept;
#endif

}  // namespace wdm::core
