// Flat availability plane (Section V occupancy, all output fibers at once).
//
// The slot pipeline's replacement for vector<vector<uint8_t>>: one contiguous
// row-major N×k block of 0/1 bytes (1 = channel free), owned by the caller
// (the Interconnect keeps it up to date incrementally on grant and expiry)
// and passed to the distributed scheduler as a non-owning view. One span per
// output fiber, no per-slot rebuild, no per-fiber heap node.
#pragma once

#include <cstdint>
#include <span>

#include "core/wave_mask.hpp"

namespace wdm::core {

/// Non-owning view of a row-major N×k availability plane. A view may also
/// carry the packed bit-plane form (mask_words(k) words per fiber, the
/// core/wave_mask.hpp layout) when the owner maintains one — the masked
/// kernels then skip the per-call byte→bit packing.
class AvailabilityView {
 public:
  constexpr AvailabilityView() noexcept = default;
  constexpr AvailabilityView(const std::uint8_t* data, std::int32_t n_fibers,
                             std::int32_t k) noexcept
      : data_(data), n_fibers_(n_fibers), k_(k) {}
  constexpr AvailabilityView(const std::uint8_t* data,
                             const std::uint64_t* bits, std::int32_t n_fibers,
                             std::int32_t k) noexcept
      : data_(data), bits_(bits), n_fibers_(n_fibers), k_(k) {}

  /// An empty view means "every channel free" (like an empty mask).
  constexpr bool empty() const noexcept { return data_ == nullptr; }
  constexpr std::int32_t n_fibers() const noexcept { return n_fibers_; }
  constexpr std::int32_t k() const noexcept { return k_; }

  /// Size-k mask of one output fiber. Requires fiber in [0, n_fibers).
  constexpr std::span<const std::uint8_t> row(std::int32_t fiber) const noexcept {
    return {data_ + static_cast<std::size_t>(fiber) * static_cast<std::size_t>(k_),
            static_cast<std::size_t>(k_)};
  }

  /// Packed bit row of one output fiber (mask_words(k) words), or an empty
  /// span when the owner carries no bit plane — callers pack from row()
  /// themselves in that case.
  constexpr std::span<const std::uint64_t> bits_row(
      std::int32_t fiber) const noexcept {
    if (bits_ == nullptr) return {};
    const std::size_t words = mask_words(k_);
    return {bits_ + static_cast<std::size_t>(fiber) * words, words};
  }

 private:
  const std::uint8_t* data_ = nullptr;
  const std::uint64_t* bits_ = nullptr;
  std::int32_t n_fibers_ = 0;
  std::int32_t k_ = 0;
};

}  // namespace wdm::core
