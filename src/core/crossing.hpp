// Crossing edges (Definition 1) and the uncrossing procedure (Lemma 1).
//
// Two request-graph edges a_j b_v and a_i b_u of a circular request graph
// "cross" when they wrap around each other; Lemma 1 shows every pair of
// crossing edges in a maximum matching can be replaced by the parallel pair
// (a_i b_v, a_j b_u), so some maximum matching is crossing-free. This is the
// structural fact that makes breaking (Definition 2) lossless.
//
// The paper states Definition 1 with mod-k interval notation; we phrase the
// same conditions as *forward distances* compared as integers, which is
// unambiguous for the degenerate boundary intervals (see wavelength.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <utility>

#include "core/conversion.hpp"
#include "core/request_graph.hpp"
#include "graph/matching.hpp"

namespace wdm::core {

/// One request-graph edge: left vertex index j (paper's a_j) and channel v.
struct Edge {
  std::int32_t j = 0;
  Channel v = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Definition 1: does edge (g's left vertex x.j -> channel x.v) cross edge
/// (y.j -> y.v)? Requires a circular scheme; both edges must exist in g.
/// The relation is symmetric (crossing is mutual); this predicate evaluates
/// the paper's case split with x in the a_j role and y in the a_i role.
bool crosses(const RequestGraph& g, const Edge& x, const Edge& y);

/// Symmetric wrapper: true iff x crosses y or y crosses x. (By Definition 1
/// these agree; the test suite verifies the symmetry property itself.)
bool edges_cross(const RequestGraph& g, const Edge& x, const Edge& y);

/// Finds any pair of crossing edges in the matching, or nullopt.
std::optional<std::pair<Edge, Edge>> find_crossing_pair(
    const RequestGraph& g, const graph::Matching& m);

/// Lemma 1 constructive step applied to fixpoint: replaces crossing pairs
/// (a_i b_u, a_j b_v) with (a_i b_v, a_j b_u) until none remain. Preserves
/// matching size and validity; returns the number of swaps performed.
std::int32_t uncross_matching(const RequestGraph& g, graph::Matching& m);

/// Lemma 6 quantity: δ(u), the 1-based position of channel u within the
/// adjacency list of wavelength w counted from the minus side.
std::int32_t delta_of(const ConversionScheme& scheme, Wavelength w, Channel u);

/// Theorem 3 bound for breaking at the δ-th edge: max{δ-1, d-δ}.
std::int32_t breaking_gap_bound(std::int32_t d, std::int32_t delta);

}  // namespace wdm::core
