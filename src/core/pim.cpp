#include "core/pim.hpp"

#include <vector>

#include "util/check.hpp"

namespace wdm::core {

ChannelAssignment pim_schedule(const RequestVector& requests,
                               const ConversionScheme& scheme,
                               std::int32_t iterations, util::Rng& rng,
                               std::span<const std::uint8_t> available) {
  WDM_CHECK_MSG(requests.k() == scheme.k(),
                "request vector and scheme disagree on k");
  WDM_CHECK_MSG(iterations >= 1, "need at least one PIM iteration");
  WDM_CHECK_MSG(available.empty() ||
                    static_cast<std::int32_t>(available.size()) == scheme.k(),
                "availability mask must have one entry per channel");

  const std::int32_t k = scheme.k();
  ChannelAssignment out(k);

  // Unmatched requests, per wavelength (counts); free channels as a flag.
  std::vector<std::int32_t> pending = requests.counts();
  std::vector<std::uint8_t> free_channel(static_cast<std::size_t>(k), 1);
  for (Channel v = 0; v < k; ++v) {
    if (!available.empty() && available[static_cast<std::size_t>(v)] == 0) {
      free_channel[static_cast<std::size_t>(v)] = 0;
    }
  }

  std::vector<std::vector<Wavelength>> proposals(static_cast<std::size_t>(k));
  for (std::int32_t round = 0; round < iterations; ++round) {
    // Propose: each unmatched request picks one free admissible channel
    // uniformly at random (requests of a wavelength propose independently).
    for (auto& p : proposals) p.clear();
    bool any_proposal = false;
    for (Wavelength w = 0; w < k; ++w) {
      const std::int32_t n = pending[static_cast<std::size_t>(w)];
      if (n == 0) continue;
      // Free admissible channels of this wavelength.
      std::vector<Channel> options;
      for (const Channel v : scheme.adjacency_list(w)) {
        if (free_channel[static_cast<std::size_t>(v)]) options.push_back(v);
      }
      if (options.empty()) continue;
      for (std::int32_t r = 0; r < n; ++r) {
        const Channel v = options[static_cast<std::size_t>(
            rng.uniform_below(options.size()))];
        proposals[static_cast<std::size_t>(v)].push_back(w);
        any_proposal = true;
      }
    }
    if (!any_proposal) break;

    // Grant + accept: each channel picks one proposer uniformly (PIM).
    for (Channel v = 0; v < k; ++v) {
      auto& props = proposals[static_cast<std::size_t>(v)];
      if (props.empty() || !free_channel[static_cast<std::size_t>(v)]) continue;
      const Wavelength w =
          props[static_cast<std::size_t>(rng.uniform_below(props.size()))];
      out.source[static_cast<std::size_t>(v)] = w;
      out.granted += 1;
      free_channel[static_cast<std::size_t>(v)] = 0;
      pending[static_cast<std::size_t>(w)] -= 1;
    }
  }
  return out;
}

}  // namespace wdm::core
