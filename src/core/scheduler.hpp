// Per-output-fiber scheduler: algorithm dispatch plus fairness arbitration.
//
// This is the component the paper's Section I sketches: each output fiber
// runs its own scheduler, whose input is the requests destined to that fiber
// in the current slot and whose output is grant/reject plus an assigned
// channel per granted request. The matching kernels decide how many requests
// of each *wavelength* win (that alone fixes the matching size); which
// individual same-wavelength request wins is then a fairness decision made
// by random or round-robin arbitration, as the paper recommends following
// PIM [7] and iSLIP [8].
//
// Besides the paper's algorithms, the scheduler can run the generic
// maximum-matching baselines (Hopcroft–Karp [1], Glover's algorithm [2]) on
// the explicit request graph — the comparison targets of experiments E1/E2.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/break_first_available.hpp"
#include "core/channel_assignment.hpp"
#include "core/conversion.hpp"
#include "core/health.hpp"
#include "core/request.hpp"
#include "util/rng.hpp"
#include "util/snapshot.hpp"
#include "util/threadpool.hpp"

namespace wdm::core {

enum class Algorithm : std::uint8_t {
  kAuto,                 ///< pick by scheme: FA, BFA, or full-range
  kFirstAvailable,       ///< Table 2 (non-circular), O(k)
  kBreakFirstAvailable,  ///< Table 3 (circular), O(dk)
  kApproxBfa,            ///< Section IV.C single-break, O(k)
  kFullRange,            ///< trivial full-range rule
  kHopcroftKarp,         ///< baseline [1] on the explicit request graph
  kGlover,               ///< baseline Table 1 (non-circular only)
  kGreedyMaximal,        ///< ablation: maximal (not maximum) greedy matching
  kSparseBudgeted,       ///< sparse conversion: <= converter_budget conversions
};

enum class Arbitration : std::uint8_t {
  kFifo,        ///< earliest request of the wavelength wins
  kRoundRobin,  ///< rotating cursor per wavelength (iSLIP-style)
  kRandom,      ///< uniform random winners (PIM-style)
};

/// Why a request was not granted. Malformed inputs are rejected per-request —
/// one bad SlotRequest costs one grant, never the slot or the process — and
/// surface in MetricsCollector as `rejected_malformed`.
enum class RejectReason : std::uint8_t {
  kGranted = 0,          ///< granted (no rejection)
  kUndecided,            ///< default state: the scheduler never decided (bug)
  kNoChannel,            ///< well-formed, but the matching had no channel left
  kInvalidOutputFiber,   ///< output fiber outside [0, N)
  kInvalidWavelength,    ///< wavelength outside [0, k)
  kInvalidInputFiber,    ///< negative (or out-of-range) input fiber
  kInvalidDuration,      ///< holding time < 1 slot
  kInvalidPriority,      ///< negative QoS class
  kBadAvailabilityMask,  ///< availability mask has the wrong shape
  kInternalError,        ///< the per-fiber kernel threw; the slot survived
  kFaulted,              ///< destination fiber is down (hardware fault)
  kBadHealthMask,        ///< health mask has the wrong shape
  kShedOverload,         ///< shed by admission control / queue overflow
};

/// True for rejections caused by malformed input or an internal fault, as
/// opposed to a genuine capacity loss (kNoChannel), a hardware fault on
/// the destination (kFaulted, which MetricsCollector counts separately and
/// the interconnect's retry queue may re-offer in a later slot), or an
/// overload shed (kShedOverload, a deliberate admission-control drop).
constexpr bool is_malformed(RejectReason reason) noexcept {
  return reason != RejectReason::kGranted &&
         reason != RejectReason::kNoChannel &&
         reason != RejectReason::kFaulted &&
         reason != RejectReason::kShedOverload;
}

const char* to_string(RejectReason reason) noexcept;

/// Grant decision for one request, parallel to the schedule() input.
/// Invariant on every decision a scheduler returns: granted ⇔ reason ==
/// kGranted; kUndecided never escapes (the fuzz harness asserts both).
struct PortDecision {
  bool granted = false;
  Channel channel = kNone;
  RejectReason reason = RejectReason::kUndecided;

  static constexpr PortDecision grant(Channel c) noexcept {
    return PortDecision{true, c, RejectReason::kGranted};
  }
  static constexpr PortDecision reject(RejectReason r) noexcept {
    return PortDecision{false, kNone, r};
  }
};

/// Field validation shared by the per-port and distributed schedulers:
/// kGranted if `r` is well-formed for a k-wavelength port, else the reason.
RejectReason validate_request(const Request& r, std::int32_t k) noexcept;

class OutputPortScheduler {
 public:
  /// `pool`, if given, parallelises BFA's d candidate breaks.
  explicit OutputPortScheduler(ConversionScheme scheme,
                               Algorithm algorithm = Algorithm::kAuto,
                               Arbitration arbitration = Arbitration::kRoundRobin,
                               std::uint64_t seed = 1,
                               util::ThreadPool* pool = nullptr);

  const ConversionScheme& scheme() const noexcept { return scheme_; }
  /// The concrete algorithm after kAuto resolution.
  Algorithm algorithm() const noexcept { return algorithm_; }
  Arbitration arbitration() const noexcept { return arbitration_; }
  std::int32_t k() const noexcept { return scheme_.k(); }

  /// Converter pool size for kSparseBudgeted (conversions per slot this
  /// fiber may use). Ignored by the other algorithms, whose Figure-1
  /// architecture has a dedicated converter per channel.
  void set_converter_budget(std::int32_t budget);
  std::int32_t converter_budget() const noexcept { return converter_budget_; }

  /// Channel-level schedule (the matching kernel only, no identities).
  ChannelAssignment assign_channels(const RequestVector& requests,
                                    std::span<const std::uint8_t> available = {});

  /// Channel-level schedule under degraded hardware: applies the fault
  /// reduction (core/health.hpp), runs the kernel on the surviving
  /// instance, and folds the converter-fault pre-grants back in. The result
  /// is a maximum matching of the fault-reduced request graph whenever the
  /// healthy kernel is maximum. A faulted fiber grants nothing.
  /// `degraded` requests the overload degeneration (see schedule_into).
  ChannelAssignment assign_channels(const RequestVector& requests,
                                    std::span<const std::uint8_t> available,
                                    const HealthMask& health,
                                    bool degraded = false);

  /// As assign_channels, writing into caller-owned scratch. The paper's
  /// kernels (FA / BFA / approx-BFA / full-range) run allocation-free once
  /// the scheduler's arenas are warm; the baseline graph algorithms still
  /// build their graphs afresh and copy the result out. With `degraded` set,
  /// the exact circular BFA sweep (O(dk)) is downgraded to the Section IV.C
  /// single-break approximation (O(k), within (d-1)/2 of maximum, Theorem 3)
  /// — the overload ladder's work-bounded mode. Algorithms that already run
  /// in O(k) (FA, approx-BFA, full-range) are unaffected by the flag.
  void assign_channels_into(const RequestVector& requests,
                            std::span<const std::uint8_t> available,
                            ChannelAssignment& out, bool degraded = false);

  /// True iff `degraded` scheduling actually changes this port's kernel
  /// (exact circular BFA with d > 1 is the only O(dk) per-slot kernel).
  bool degradable() const noexcept {
    return algorithm_ == Algorithm::kBreakFirstAvailable &&
           scheme_.degree() > 1;
  }

  /// Full schedule of one slot: grant/reject + channel per request.
  /// `available` masks occupied channels (Section V); empty = all free.
  /// `health`, if non-null, degrades the fiber: a fiber fault rejects every
  /// request with kFaulted; channel/converter faults shrink the matching to
  /// the surviving request graph (still maximum on it).
  std::vector<PortDecision> schedule(std::span<const Request> requests,
                                     std::span<const std::uint8_t> available = {},
                                     const HealthMask* health = nullptr);

  /// As schedule, writing decisions into a caller-owned span (one entry per
  /// request). Decision-for-decision identical to schedule(); the fast path
  /// of the slot pipeline — zero heap allocations once the scratch arenas
  /// are warm (healthy hardware; the fault-reduction path still allocates).
  /// `degraded` downgrades a degradable() kernel to its O(k) approximation
  /// (deadline-bounded degradation; composes with `health`).
  /// `avail_bits`, if sized mask_words(k), is the packed form of `available`
  /// (core/wave_mask.hpp layout) and lets the masked kernels skip the
  /// per-call byte→bit packing; any other size is ignored and the bytes are
  /// packed locally. Purely a fast path — decisions are unchanged.
  void schedule_into(std::span<const Request> requests,
                     std::span<const std::uint8_t> available,
                     const HealthMask* health,
                     std::span<PortDecision> decisions,
                     bool degraded = false,
                     std::span<const std::uint64_t> avail_bits = {});

  /// Column-oriented schedule_into for the SoA slot batch (healthy hardware
  /// only — fault reduction goes through schedule_into): one decision per
  /// column entry, validation in the exact validate_request field order, so
  /// decisions are bit-identical to schedule_into over the equivalent AoS
  /// requests. Works in both scalar and masked kernel modes.
  void schedule_batch_into(std::span<const std::int32_t> wavelengths,
                           std::span<const std::int32_t> input_fibers,
                           std::span<const std::int32_t> durations,
                           std::span<const std::uint8_t> available,
                           std::span<const std::uint64_t> avail_bits,
                           std::span<PortDecision> decisions,
                           bool degraded = false);

  /// Pre-sizes the arbitration scratch (CSR winner/member arrays) for slot
  /// batches of up to `max_requests` requests at this port. The scratch
  /// converges on its own — capacity persists across slots — but every new
  /// per-port high-water mark (a slot batch bigger than any before it)
  /// costs one reallocation; callers with a hard zero-allocation serving
  /// contract (sim::Fleet) reserve the worst case up front instead.
  void reserve_batch(std::size_t max_requests);

  /// Checkpoint of the port's mutable scheduling state (arbitration RNG and
  /// round-robin cursors — everything a replay needs beyond the config).
  void save_state(util::SnapshotWriter& w) const;
  void restore_state(util::SnapshotReader& r);

 private:
  /// Whether this port's kernel has a masked (word-at-a-time) variant and
  /// the process-wide SIMD mode allows using it (core/simd.hpp).
  bool use_masked_kernels() const noexcept;
  /// Masked-kernel dispatch (nonempty_bits_ must already reflect the
  /// request vector). Only called when use_masked_kernels() is true.
  void masked_assign_channels_into(const RequestVector& requests,
                                   std::span<const std::uint64_t> avail_words,
                                   ChannelAssignment& out, bool degraded);
  /// Shared arbitration tail of schedule_into / schedule_batch_into:
  /// counting-sort CSR over assign_scratch_ and the undecided entries, then
  /// per-wavelength FIFO / round-robin / random winner selection.
  /// `wavelength_of(idx)` must return the wavelength of request `idx`.
  template <typename WaveFn>
  void arbitrate_into(std::size_t n_requests, WaveFn&& wavelength_of,
                      std::span<PortDecision> decisions);

  ConversionScheme scheme_;
  Algorithm algorithm_;
  Arbitration arbitration_;
  util::Rng rng_;
  util::ThreadPool* pool_;
  std::int32_t converter_budget_;
  std::vector<std::uint32_t> rr_cursor_;  // per-wavelength round-robin state

  // Per-slot scratch arenas, reused across schedule_into calls. Vector
  // capacity persists between slots, so the steady state never allocates.
  RequestVector rv_scratch_;
  ChannelAssignment assign_scratch_;
  BfaScratch bfa_scratch_;
  // CSR (counting-sort) layout of the arbitration inputs: channels won per
  // wavelength in increasing channel order, and competing request indices
  // per wavelength in arrival order. uint32 throughout — per-slot per-port
  // counts are far below 2^32 and the narrower columns halve the scatter
  // traffic of the counting sorts.
  std::vector<std::uint32_t> won_offsets_;     // size k+1
  std::vector<Channel> won_flat_;
  std::vector<std::uint32_t> member_offsets_;  // size k+1
  std::vector<std::uint32_t> member_flat_;
  std::vector<std::uint32_t> csr_cursor_;      // fill cursors for both sorts
  // Packed bit scratch for the masked kernels (core/wave_mask.hpp layout),
  // sized mask_words(k) each.
  std::vector<std::uint64_t> avail_bits_;
  std::vector<std::uint64_t> nonempty_bits_;
};

}  // namespace wdm::core
