#include "core/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace wdm::core {

namespace {

std::atomic<SimdMode> g_mode{SimdMode::kAuto};

/// WDM_SIMD resolution, computed once: "off" / "0" / "scalar" (any case
/// would be nice, but env conventions here are lowercase) force the scalar
/// reference kernels; everything else — including unset — keeps masks on.
bool env_allows_masks() {
  static const bool allowed = [] {
    const char* v = std::getenv("WDM_SIMD");
    if (v == nullptr) return true;
    return std::strcmp(v, "off") != 0 && std::strcmp(v, "0") != 0 &&
           std::strcmp(v, "scalar") != 0;
  }();
  return allowed;
}

}  // namespace

void set_simd_mode(SimdMode mode) noexcept {
  g_mode.store(mode, std::memory_order_relaxed);
}

SimdMode simd_mode() noexcept {
  return g_mode.load(std::memory_order_relaxed);
}

bool simd_enabled() noexcept {
  switch (g_mode.load(std::memory_order_relaxed)) {
    case SimdMode::kScalar: return false;
    case SimdMode::kMask: return true;
    case SimdMode::kAuto: break;
  }
  return env_allows_masks();
}

bool avx2_available() noexcept {
#if defined(WDM_HAVE_AVX2_TU) && defined(__GNUC__)
  static const bool have = __builtin_cpu_supports("avx2");
  return have;
#else
  return false;
#endif
}

const char* simd_backend() noexcept {
  if (!simd_enabled()) return "scalar";
  return avx2_available() ? "mask+avx2" : "mask";
}

}  // namespace wdm::core
