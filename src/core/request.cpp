#include "core/request.hpp"

#include "util/check.hpp"

namespace wdm::core {

RequestVector::RequestVector(std::int32_t k) {
  WDM_CHECK_MSG(k > 0, "need at least one wavelength");
  counts_.assign(static_cast<std::size_t>(k), 0);
}

RequestVector::RequestVector(std::initializer_list<std::int32_t> counts)
    : counts_(counts) {
  WDM_CHECK_MSG(!counts_.empty(), "need at least one wavelength");
  for (const auto c : counts_) {
    WDM_CHECK_MSG(c >= 0, "request counts must be nonnegative");
    total_ += c;
  }
}

Wavelength RequestVector::first_nonempty() const noexcept {
  for (Wavelength w = 0; w < k(); ++w) {
    if (counts_[static_cast<std::size_t>(w)] > 0) return w;
  }
  return kNone;
}

std::vector<Wavelength> RequestVector::to_sorted_wavelengths() const {
  std::vector<Wavelength> out;
  out.reserve(static_cast<std::size_t>(total_));
  for (Wavelength w = 0; w < k(); ++w) {
    for (std::int32_t c = 0; c < counts_[static_cast<std::size_t>(w)]; ++c) {
      out.push_back(w);
    }
  }
  return out;
}

RequestVector make_request_vector(std::int32_t k,
                                  const std::vector<Request>& requests) {
  RequestVector rv(k);
  for (const auto& r : requests) rv.add(r.wavelength);
  return rv;
}

}  // namespace wdm::core
