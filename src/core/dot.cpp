#include "core/dot.hpp"

#include <sstream>

#include "util/check.hpp"

namespace wdm::core {

namespace {

void emit_header(std::ostream& os, const char* name) {
  os << "graph " << name << " {\n"
     << "  rankdir=LR;\n"
     << "  node [shape=circle, fontsize=10];\n";
}

}  // namespace

std::string conversion_graph_dot(const ConversionScheme& scheme) {
  std::ostringstream os;
  emit_header(os, "conversion");
  const std::int32_t k = scheme.k();
  for (Wavelength w = 0; w < k; ++w) {
    os << "  in" << w << " [label=\"λ" << w << "\"];\n";
    os << "  out" << w << " [label=\"λ" << w << "\", shape=doublecircle];\n";
  }
  for (Wavelength w = 0; w < k; ++w) {
    for (const Channel u : scheme.adjacency_list(w)) {
      os << "  in" << w << " -- out" << u << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string request_graph_dot(const RequestGraph& graph,
                              const graph::Matching* matching) {
  if (matching != nullptr) {
    WDM_CHECK_MSG(matching->n_left() == graph.n_requests() &&
                      matching->n_right() == graph.k(),
                  "matching shape must fit the request graph");
  }
  std::ostringstream os;
  emit_header(os, "request_graph");
  for (std::int32_t j = 0; j < graph.n_requests(); ++j) {
    os << "  a" << j << " [label=\"a" << j << " (λ" << graph.wavelength_of(j)
       << ")\"];\n";
  }
  for (Channel u = 0; u < graph.k(); ++u) {
    os << "  b" << u << " [label=\"b" << u << "\", shape=doublecircle"
       << (graph.channel_available(u) ? "" : ", style=dashed") << "];\n";
  }
  for (std::int32_t j = 0; j < graph.n_requests(); ++j) {
    for (Channel u = 0; u < graph.k(); ++u) {
      if (!graph.has_edge(j, u)) continue;
      const bool matched =
          matching != nullptr && matching->right_of(j) == u;
      os << "  a" << j << " -- b" << u
         << (matched ? " [penwidth=3]" : " [color=gray]") << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

graph::Matching assignment_to_matching(const RequestGraph& graph,
                                       const ChannelAssignment& assignment) {
  WDM_CHECK_MSG(assignment.k() == graph.k(),
                "assignment and graph disagree on k");
  graph::Matching m(graph.n_requests(), graph.k());
  for (Channel u = 0; u < graph.k(); ++u) {
    const Wavelength w = assignment.source[static_cast<std::size_t>(u)];
    if (w == kNone) continue;
    // Claim the first not-yet-matched request of wavelength w.
    bool claimed = false;
    for (std::int32_t j = 0; j < graph.n_requests(); ++j) {
      if (graph.wavelength_of(j) == w && !m.left_matched(j)) {
        m.match(j, u);
        claimed = true;
        break;
      }
    }
    WDM_CHECK_MSG(claimed, "assignment grants more channels to a wavelength "
                           "than it has requests");
  }
  return m;
}

}  // namespace wdm::core
