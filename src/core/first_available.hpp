// The First Available Algorithm (paper Table 2, Theorem 1) — O(k).
//
// For non-circular symmetric conversion the request graph is staircase
// convex, so scanning output channels b_0..b_{k-1} and granting each to the
// first pending request adjacent to it yields a maximum matching. Operating
// on the request *vector* (per-wavelength counts) makes one step O(1) and the
// whole schedule O(k) — independent of both the interconnect size N and the
// conversion degree d, exactly the complexity claimed in Section III.
//
// Occupied output channels (Section V) are skipped via the availability
// mask; this equals deleting those right-side vertices, which preserves
// convexity and hence optimality.
#pragma once

#include <cstdint>
#include <span>

#include "core/channel_assignment.hpp"
#include "core/conversion.hpp"
#include "core/request.hpp"

namespace wdm::core {

/// Maximum-matching channel assignment for a non-circular scheme.
/// `available` is a size-k mask (1 = channel free); empty means all free.
ChannelAssignment first_available(const RequestVector& requests,
                                  const ConversionScheme& scheme,
                                  std::span<const std::uint8_t> available = {});

/// As first_available, writing into caller-owned scratch: `out` is reset to
/// k channels and filled in place, so a warm scratch assignment makes the
/// call allocation-free (the per-slot hot path).
void first_available_into(const RequestVector& requests,
                          const ConversionScheme& scheme,
                          std::span<const std::uint8_t> available,
                          ChannelAssignment& out);

/// Masked variant of first_available_into, decision-for-decision identical:
/// `avail_words` is the packed availability row (bit = 1 free, mask_words(k)
/// words, tail zero; see core/wave_mask.hpp) and `nonempty_words` the packed
/// nonempty-wavelength mask (bit w set iff requests.count(w) > 0). Both
/// sweeps jump with countr_zero over exactly the iterations the scalar loop
/// no-ops on — occupied channels and empty wavelengths — so the grant
/// sequence, and therefore the assignment, is bit-identical.
void first_available_masked_into(const RequestVector& requests,
                                 const ConversionScheme& scheme,
                                 std::span<const std::uint64_t> avail_words,
                                 std::span<const std::uint64_t> nonempty_words,
                                 ChannelAssignment& out);

}  // namespace wdm::core
