#include "core/break_first_available.hpp"

#include <algorithm>
#include <vector>

#include "core/breaking.hpp"
#include "core/crossing.hpp"
#include "util/check.hpp"

namespace wdm::core {

namespace {

bool channel_free(std::span<const std::uint8_t> available, Channel v) {
  return available.empty() || available[static_cast<std::size_t>(v)] != 0;
}

/// Lowest wavelength with a pending request and at least one available
/// adjacent channel (an isolated request can never be granted and is not a
/// useful breaking vertex), or kNone.
Wavelength pick_breaking_wavelength(const RequestVector& requests,
                                    const ConversionScheme& scheme,
                                    std::span<const std::uint8_t> available) {
  const std::vector<std::int32_t>& counts = requests.counts();
  for (Wavelength w = 0; w < scheme.k(); ++w) {
    if (counts[static_cast<std::size_t>(w)] == 0) continue;
    const std::int32_t deg = scheme.adjacency_count(w);
    for (std::int32_t idx = 0; idx < deg; ++idx) {
      if (channel_free(available, scheme.adjacency_at(w, idx))) return w;
    }
  }
  return kNone;
}

void validate_inputs(const RequestVector& requests,
                     const ConversionScheme& scheme,
                     std::span<const std::uint8_t> available) {
  WDM_CHECK_MSG(scheme.kind() == ConversionKind::kCircular,
                "break_first_available requires a circular scheme; "
                "use first_available for non-circular conversion");
  WDM_CHECK_MSG(!scheme.is_full_range(),
                "full-range conversion is scheduled trivially (Section I)");
  WDM_CHECK_MSG(requests.k() == scheme.k(),
                "request vector and scheme disagree on k");
  WDM_CHECK_MSG(available.empty() ||
                    static_cast<std::int32_t>(available.size()) == scheme.k(),
                "availability mask must have one entry per channel");
}

}  // namespace

namespace {

/// bfa_single_break_into minus the input validation — the exhaustive sweep
/// validates once and runs this d times, so the per-candidate cost stays the
/// Table-3 O(k) with no repeated shape checks.
void single_break_unchecked(const RequestVector& requests,
                            const ConversionScheme& scheme,
                            std::span<const std::uint8_t> available,
                            Wavelength w_i, Channel u, ChannelAssignment& out) {
  const std::int32_t k = scheme.k();
  const std::int32_t d = scheme.degree();
  const std::vector<std::int32_t>& counts = requests.counts();
  out.reset(k);
  out.source[static_cast<std::size_t>(u)] = w_i;
  out.granted = 1;

  // First Available over the rotated (staircase convex, Lemma 2) reduced
  // graph, in request-vector form. The left pointer walks wavelengths in
  // rotated order κ = 0..k-1, i.e. w_i's remaining group first.
  //
  // Every modular quantity advances by exactly +1 per step — the wavelength,
  // the rotated start of its adjacency run, and the original channel of the
  // current rotated position — so the sweep maintains them incrementally
  // (conditional wrap) instead of re-deriving them with mod_k. This keeps the
  // per-candidate cost the Table-3 O(k) with no divisions in the loop, and
  // computes exactly the same intervals as reduced_adjacency (the closed
  // form's `start` is the only per-wavelength input, and it advances with
  // the wavelength).
  const std::int32_t plus_side_span =
      fwd(w_i, mod_k(static_cast<std::int64_t>(u) + scheme.e(), k), k);
  std::int32_t run_start =
      channel_to_rotated(u, scheme.adjacency_start(w_i), k);
  const auto iv_of = [&](std::int32_t kappa_now) {
    const std::int32_t last = run_start + d - 1;  // may pass k-1 (wraps)
    if (last <= k - 2) return graph::Interval{run_start, last};
    if (kappa_now <= plus_side_span) return graph::Interval{0, last - k};
    return graph::Interval{run_start, k - 2};
  };

  std::int32_t kappa = 0;
  Wavelength w = w_i;
  std::int32_t remaining =
      counts[static_cast<std::size_t>(w_i)] - 1;  // a_i itself is consumed
  graph::Interval iv = remaining > 0 ? iv_of(0) : graph::Interval{};

  const auto advance = [&] {
    ++kappa;
    if (kappa == k) return;
    if (++w == k) w = 0;
    if (++run_start == k) run_start = 0;
    remaining = counts[static_cast<std::size_t>(w)];
    if (remaining > 0) iv = iv_of(kappa);
  };

  Channel v = u + 1 == k ? 0 : u + 1;  // rotated position 0 is b_{u+1}
  for (std::int32_t vp = 0; vp <= k - 2; ++vp, v = (v + 1 == k ? 0 : v + 1)) {
    if (!channel_free(available, v)) continue;  // Section V: occupied channel
    while (kappa < k && (remaining == 0 || iv.empty() || iv.end < vp)) {
      advance();
    }
    if (kappa == k) break;
    if (iv.begin <= vp) {
      WDM_DCHECK(scheme.can_convert(w, v));
      WDM_DCHECK(iv == reduced_adjacency(scheme, w_i, u, w));
      out.source[static_cast<std::size_t>(v)] = w;
      out.granted += 1;
      remaining -= 1;
    }
  }
}

}  // namespace

void bfa_single_break_into(const RequestVector& requests,
                           const ConversionScheme& scheme,
                           std::span<const std::uint8_t> available,
                           Wavelength w_i, Channel u, ChannelAssignment& out) {
  validate_inputs(requests, scheme, available);
  WDM_CHECK_MSG(requests.count(w_i) > 0,
                "breaking wavelength must have a pending request");
  WDM_CHECK_MSG(scheme.can_convert(w_i, u), "breaking edge must exist");
  WDM_CHECK_MSG(channel_free(available, u), "breaking channel must be free");
  single_break_unchecked(requests, scheme, available, w_i, u, out);
}

ChannelAssignment bfa_single_break(const RequestVector& requests,
                                   const ConversionScheme& scheme,
                                   std::span<const std::uint8_t> available,
                                   Wavelength w_i, Channel u) {
  ChannelAssignment out(scheme.k());
  bfa_single_break_into(requests, scheme, available, w_i, u, out);
  return out;
}

void break_first_available_into(const RequestVector& requests,
                                const ConversionScheme& scheme,
                                std::span<const std::uint8_t> available,
                                util::ThreadPool* pool, BfaScratch& scratch,
                                ChannelAssignment& out) {
  validate_inputs(requests, scheme, available);
  const std::int32_t k = scheme.k();
  const Wavelength w_i = pick_breaking_wavelength(requests, scheme, available);
  if (w_i == kNone) {
    out.reset(k);
    return;
  }

  scratch.candidates.clear();
  const std::int32_t deg = scheme.adjacency_count(w_i);
  for (std::int32_t idx = 0; idx < deg; ++idx) {
    const Channel u = scheme.adjacency_at(w_i, idx);
    if (channel_free(available, u)) scratch.candidates.push_back(u);
  }
  WDM_DCHECK(!scratch.candidates.empty());

  // Grow-only: keep previously warmed assignments alive; each candidate run
  // resets its slot in place, so no per-slot allocation once warm.
  if (scratch.results.size() < scratch.candidates.size()) {
    scratch.results.resize(scratch.candidates.size(), ChannelAssignment(k));
  }
  const auto run_candidate = [&](std::size_t idx) {
    single_break_unchecked(requests, scheme, available, w_i,
                           scratch.candidates[idx], scratch.results[idx]);
  };
  if (pool != nullptr && scratch.candidates.size() > 1) {
    pool->parallel_for(0, scratch.candidates.size(), run_candidate);
  } else {
    for (std::size_t idx = 0; idx < scratch.candidates.size(); ++idx) {
      run_candidate(idx);
    }
  }

  // Deterministic winner: first candidate (minus-side order) of maximum size.
  std::size_t best = 0;
  for (std::size_t idx = 1; idx < scratch.candidates.size(); ++idx) {
    if (scratch.results[idx].granted > scratch.results[best].granted) {
      best = idx;
    }
  }
  out.source.assign(scratch.results[best].source.begin(),
                    scratch.results[best].source.end());
  out.granted = scratch.results[best].granted;
}

ChannelAssignment break_first_available(const RequestVector& requests,
                                        const ConversionScheme& scheme,
                                        std::span<const std::uint8_t> available,
                                        util::ThreadPool* pool) {
  BfaScratch scratch;
  ChannelAssignment out(scheme.k());
  break_first_available_into(requests, scheme, available, pool, scratch, out);
  return out;
}

Channel approx_break_first_available_into(
    const RequestVector& requests, const ConversionScheme& scheme,
    std::span<const std::uint8_t> available, ChannelAssignment& out) {
  validate_inputs(requests, scheme, available);
  const Wavelength w_i = pick_breaking_wavelength(requests, scheme, available);
  if (w_i == kNone) {
    out.reset(scheme.k());
    return kNone;
  }

  const std::int32_t d = scheme.degree();
  const std::int32_t delta_star = (d + 1) / 2;  // Corollary 1: "shortest" edge

  // Pick the available adjacent channel with the smallest Theorem-3 bound,
  // breaking ties toward the centre.
  Channel best_u = kNone;
  std::int32_t best_delta = 0;
  std::int32_t best_bound = 0;
  for (std::int32_t idx = 0; idx < d; ++idx) {
    const Channel u = scheme.adjacency_at(w_i, idx);
    if (!channel_free(available, u)) continue;
    const std::int32_t delta = idx + 1;
    const std::int32_t bound = breaking_gap_bound(d, delta);
    if (best_u == kNone || bound < best_bound ||
        (bound == best_bound &&
         std::abs(delta - delta_star) < std::abs(best_delta - delta_star))) {
      best_u = u;
      best_delta = delta;
      best_bound = bound;
    }
  }
  WDM_DCHECK(best_u != kNone);

  bfa_single_break_into(requests, scheme, available, w_i, best_u, out);
  return best_u;
}

ApproxBfaResult approx_break_first_available(
    const RequestVector& requests, const ConversionScheme& scheme,
    std::span<const std::uint8_t> available) {
  validate_inputs(requests, scheme, available);
  ApproxBfaResult out{ChannelAssignment(scheme.k()), kNone, 0, 0};
  const Wavelength w_i = pick_breaking_wavelength(requests, scheme, available);
  if (w_i == kNone) return out;

  const std::int32_t d = scheme.degree();
  const std::int32_t delta_star = (d + 1) / 2;  // Corollary 1: "shortest" edge

  Channel best_u = kNone;
  std::int32_t best_delta = 0;
  std::int32_t best_bound = 0;
  for (std::int32_t idx = 0; idx < d; ++idx) {
    const Channel u = scheme.adjacency_at(w_i, idx);
    if (!channel_free(available, u)) continue;
    const std::int32_t delta = idx + 1;
    const std::int32_t bound = breaking_gap_bound(d, delta);
    if (best_u == kNone || bound < best_bound ||
        (bound == best_bound &&
         std::abs(delta - delta_star) < std::abs(best_delta - delta_star))) {
      best_u = u;
      best_delta = delta;
      best_bound = bound;
    }
  }
  WDM_DCHECK(best_u != kNone);

  out.assignment = bfa_single_break(requests, scheme, available, w_i, best_u);
  out.break_channel = best_u;
  out.delta = best_delta;
  out.gap_bound = best_bound;
  return out;
}

}  // namespace wdm::core
