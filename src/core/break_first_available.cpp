#include "core/break_first_available.hpp"

#include <algorithm>
#include <vector>

#include "core/breaking.hpp"
#include "core/crossing.hpp"
#include "util/check.hpp"

namespace wdm::core {

namespace {

bool channel_free(std::span<const std::uint8_t> available, Channel v) {
  return available.empty() || available[static_cast<std::size_t>(v)] != 0;
}

/// Lowest wavelength with a pending request and at least one available
/// adjacent channel (an isolated request can never be granted and is not a
/// useful breaking vertex), or kNone.
Wavelength pick_breaking_wavelength(const RequestVector& requests,
                                    const ConversionScheme& scheme,
                                    std::span<const std::uint8_t> available) {
  for (Wavelength w = 0; w < scheme.k(); ++w) {
    if (requests.count(w) == 0) continue;
    for (const Channel v : scheme.adjacency_list(w)) {
      if (channel_free(available, v)) return w;
    }
  }
  return kNone;
}

void validate_inputs(const RequestVector& requests,
                     const ConversionScheme& scheme,
                     std::span<const std::uint8_t> available) {
  WDM_CHECK_MSG(scheme.kind() == ConversionKind::kCircular,
                "break_first_available requires a circular scheme; "
                "use first_available for non-circular conversion");
  WDM_CHECK_MSG(!scheme.is_full_range(),
                "full-range conversion is scheduled trivially (Section I)");
  WDM_CHECK_MSG(requests.k() == scheme.k(),
                "request vector and scheme disagree on k");
  WDM_CHECK_MSG(available.empty() ||
                    static_cast<std::int32_t>(available.size()) == scheme.k(),
                "availability mask must have one entry per channel");
}

}  // namespace

ChannelAssignment bfa_single_break(const RequestVector& requests,
                                   const ConversionScheme& scheme,
                                   std::span<const std::uint8_t> available,
                                   Wavelength w_i, Channel u) {
  validate_inputs(requests, scheme, available);
  WDM_CHECK_MSG(requests.count(w_i) > 0,
                "breaking wavelength must have a pending request");
  WDM_CHECK_MSG(scheme.can_convert(w_i, u), "breaking edge must exist");
  WDM_CHECK_MSG(channel_free(available, u), "breaking channel must be free");

  const std::int32_t k = scheme.k();
  ChannelAssignment out(k);
  out.source[static_cast<std::size_t>(u)] = w_i;
  out.granted = 1;

  // First Available over the rotated (staircase convex, Lemma 2) reduced
  // graph, in request-vector form. The left pointer walks wavelengths in
  // rotated order κ = 0..k-1, i.e. w_i's remaining group first.
  std::int32_t kappa = 0;
  Wavelength w = w_i;
  std::int32_t remaining = requests.count(w_i) - 1;  // a_i itself is consumed
  graph::Interval iv =
      remaining > 0 ? reduced_adjacency(scheme, w_i, u, w) : graph::Interval{};

  const auto advance = [&] {
    ++kappa;
    if (kappa == k) return;
    w = mod_k(static_cast<std::int64_t>(w_i) + kappa, k);
    remaining = requests.count(w);
    if (remaining > 0) iv = reduced_adjacency(scheme, w_i, u, w);
  };

  for (std::int32_t vp = 0; vp <= k - 2; ++vp) {
    const Channel v = rotated_to_channel(u, vp, k);
    if (!channel_free(available, v)) continue;  // Section V: occupied channel
    while (kappa < k && (remaining == 0 || iv.empty() || iv.end < vp)) {
      advance();
    }
    if (kappa == k) break;
    if (iv.begin <= vp) {
      WDM_DCHECK(scheme.can_convert(w, v));
      out.source[static_cast<std::size_t>(v)] = w;
      out.granted += 1;
      remaining -= 1;
    }
  }
  return out;
}

ChannelAssignment break_first_available(const RequestVector& requests,
                                        const ConversionScheme& scheme,
                                        std::span<const std::uint8_t> available,
                                        util::ThreadPool* pool) {
  validate_inputs(requests, scheme, available);
  const Wavelength w_i = pick_breaking_wavelength(requests, scheme, available);
  if (w_i == kNone) return ChannelAssignment(scheme.k());

  std::vector<Channel> candidates;
  for (const Channel u : scheme.adjacency_list(w_i)) {
    if (channel_free(available, u)) candidates.push_back(u);
  }
  WDM_DCHECK(!candidates.empty());

  std::vector<ChannelAssignment> results(candidates.size(),
                                         ChannelAssignment(scheme.k()));
  const auto run_candidate = [&](std::size_t idx) {
    results[idx] =
        bfa_single_break(requests, scheme, available, w_i, candidates[idx]);
  };
  if (pool != nullptr && candidates.size() > 1) {
    pool->parallel_for(0, candidates.size(), run_candidate);
  } else {
    for (std::size_t idx = 0; idx < candidates.size(); ++idx) {
      run_candidate(idx);
    }
  }

  // Deterministic winner: first candidate (minus-side order) of maximum size.
  std::size_t best = 0;
  for (std::size_t idx = 1; idx < results.size(); ++idx) {
    if (results[idx].granted > results[best].granted) best = idx;
  }
  return std::move(results[best]);
}

ApproxBfaResult approx_break_first_available(
    const RequestVector& requests, const ConversionScheme& scheme,
    std::span<const std::uint8_t> available) {
  validate_inputs(requests, scheme, available);
  ApproxBfaResult out{ChannelAssignment(scheme.k()), kNone, 0, 0};
  const Wavelength w_i = pick_breaking_wavelength(requests, scheme, available);
  if (w_i == kNone) return out;

  const std::int32_t d = scheme.degree();
  const std::int32_t delta_star = (d + 1) / 2;  // Corollary 1: "shortest" edge

  // Pick the available adjacent channel with the smallest Theorem-3 bound,
  // breaking ties toward the centre.
  const auto adjacency = scheme.adjacency_list(w_i);
  Channel best_u = kNone;
  std::int32_t best_delta = 0;
  std::int32_t best_bound = 0;
  for (std::int32_t idx = 0; idx < d; ++idx) {
    const Channel u = adjacency[static_cast<std::size_t>(idx)];
    if (!channel_free(available, u)) continue;
    const std::int32_t delta = idx + 1;
    const std::int32_t bound = breaking_gap_bound(d, delta);
    if (best_u == kNone || bound < best_bound ||
        (bound == best_bound &&
         std::abs(delta - delta_star) < std::abs(best_delta - delta_star))) {
      best_u = u;
      best_delta = delta;
      best_bound = bound;
    }
  }
  WDM_DCHECK(best_u != kNone);

  out.assignment = bfa_single_break(requests, scheme, available, w_i, best_u);
  out.break_channel = best_u;
  out.delta = best_delta;
  out.gap_bound = best_bound;
  return out;
}

}  // namespace wdm::core
