#include "core/break_first_available.hpp"

#include <algorithm>
#include <vector>

#include "core/breaking.hpp"
#include "core/crossing.hpp"
#include "core/wave_mask.hpp"
#include "util/check.hpp"

namespace wdm::core {

namespace {

bool channel_free(std::span<const std::uint8_t> available, Channel v) {
  return available.empty() || available[static_cast<std::size_t>(v)] != 0;
}

/// Lowest wavelength with a pending request and at least one available
/// adjacent channel (an isolated request can never be granted and is not a
/// useful breaking vertex), or kNone.
Wavelength pick_breaking_wavelength(const RequestVector& requests,
                                    const ConversionScheme& scheme,
                                    std::span<const std::uint8_t> available) {
  const std::vector<std::int32_t>& counts = requests.counts();
  for (Wavelength w = 0; w < scheme.k(); ++w) {
    if (counts[static_cast<std::size_t>(w)] == 0) continue;
    const std::int32_t deg = scheme.adjacency_count(w);
    for (std::int32_t idx = 0; idx < deg; ++idx) {
      if (channel_free(available, scheme.adjacency_at(w, idx))) return w;
    }
  }
  return kNone;
}

void validate_inputs(const RequestVector& requests,
                     const ConversionScheme& scheme,
                     std::span<const std::uint8_t> available) {
  WDM_CHECK_MSG(scheme.kind() == ConversionKind::kCircular,
                "break_first_available requires a circular scheme; "
                "use first_available for non-circular conversion");
  WDM_CHECK_MSG(!scheme.is_full_range(),
                "full-range conversion is scheduled trivially (Section I)");
  WDM_CHECK_MSG(requests.k() == scheme.k(),
                "request vector and scheme disagree on k");
  WDM_CHECK_MSG(available.empty() ||
                    static_cast<std::int32_t>(available.size()) == scheme.k(),
                "availability mask must have one entry per channel");
}

}  // namespace

namespace {

/// bfa_single_break_into minus the input validation — the exhaustive sweep
/// validates once and runs this d times, so the per-candidate cost stays the
/// Table-3 O(k) with no repeated shape checks.
void single_break_unchecked(const RequestVector& requests,
                            const ConversionScheme& scheme,
                            std::span<const std::uint8_t> available,
                            Wavelength w_i, Channel u, ChannelAssignment& out) {
  const std::int32_t k = scheme.k();
  const std::int32_t d = scheme.degree();
  const std::vector<std::int32_t>& counts = requests.counts();
  out.reset(k);
  out.source[static_cast<std::size_t>(u)] = w_i;
  out.granted = 1;

  // First Available over the rotated (staircase convex, Lemma 2) reduced
  // graph, in request-vector form. The left pointer walks wavelengths in
  // rotated order κ = 0..k-1, i.e. w_i's remaining group first.
  //
  // Every modular quantity advances by exactly +1 per step — the wavelength,
  // the rotated start of its adjacency run, and the original channel of the
  // current rotated position — so the sweep maintains them incrementally
  // (conditional wrap) instead of re-deriving them with mod_k. This keeps the
  // per-candidate cost the Table-3 O(k) with no divisions in the loop, and
  // computes exactly the same intervals as reduced_adjacency (the closed
  // form's `start` is the only per-wavelength input, and it advances with
  // the wavelength).
  const std::int32_t plus_side_span =
      fwd(w_i, mod_k(static_cast<std::int64_t>(u) + scheme.e(), k), k);
  std::int32_t run_start =
      channel_to_rotated(u, scheme.adjacency_start(w_i), k);
  const auto iv_of = [&](std::int32_t kappa_now) {
    const std::int32_t last = run_start + d - 1;  // may pass k-1 (wraps)
    if (last <= k - 2) return graph::Interval{run_start, last};
    if (kappa_now <= plus_side_span) return graph::Interval{0, last - k};
    return graph::Interval{run_start, k - 2};
  };

  std::int32_t kappa = 0;
  Wavelength w = w_i;
  std::int32_t remaining =
      counts[static_cast<std::size_t>(w_i)] - 1;  // a_i itself is consumed
  graph::Interval iv = remaining > 0 ? iv_of(0) : graph::Interval{};

  const auto advance = [&] {
    ++kappa;
    if (kappa == k) return;
    if (++w == k) w = 0;
    if (++run_start == k) run_start = 0;
    remaining = counts[static_cast<std::size_t>(w)];
    if (remaining > 0) iv = iv_of(kappa);
  };

  Channel v = u + 1 == k ? 0 : u + 1;  // rotated position 0 is b_{u+1}
  for (std::int32_t vp = 0; vp <= k - 2; ++vp, v = (v + 1 == k ? 0 : v + 1)) {
    if (!channel_free(available, v)) continue;  // Section V: occupied channel
    while (kappa < k && (remaining == 0 || iv.empty() || iv.end < vp)) {
      advance();
    }
    if (kappa == k) break;
    if (iv.begin <= vp) {
      WDM_DCHECK(scheme.can_convert(w, v));
      WDM_DCHECK(iv == reduced_adjacency(scheme, w_i, u, w));
      out.source[static_cast<std::size_t>(v)] = w;
      out.granted += 1;
      remaining -= 1;
    }
  }
}

}  // namespace

void bfa_single_break_into(const RequestVector& requests,
                           const ConversionScheme& scheme,
                           std::span<const std::uint8_t> available,
                           Wavelength w_i, Channel u, ChannelAssignment& out) {
  validate_inputs(requests, scheme, available);
  WDM_CHECK_MSG(requests.count(w_i) > 0,
                "breaking wavelength must have a pending request");
  WDM_CHECK_MSG(scheme.can_convert(w_i, u), "breaking edge must exist");
  WDM_CHECK_MSG(channel_free(available, u), "breaking channel must be free");
  single_break_unchecked(requests, scheme, available, w_i, u, out);
}

ChannelAssignment bfa_single_break(const RequestVector& requests,
                                   const ConversionScheme& scheme,
                                   std::span<const std::uint8_t> available,
                                   Wavelength w_i, Channel u) {
  ChannelAssignment out(scheme.k());
  bfa_single_break_into(requests, scheme, available, w_i, u, out);
  return out;
}

void break_first_available_into(const RequestVector& requests,
                                const ConversionScheme& scheme,
                                std::span<const std::uint8_t> available,
                                util::ThreadPool* pool, BfaScratch& scratch,
                                ChannelAssignment& out) {
  validate_inputs(requests, scheme, available);
  const std::int32_t k = scheme.k();
  const Wavelength w_i = pick_breaking_wavelength(requests, scheme, available);
  if (w_i == kNone) {
    out.reset(k);
    return;
  }

  scratch.candidates.clear();
  const std::int32_t deg = scheme.adjacency_count(w_i);
  for (std::int32_t idx = 0; idx < deg; ++idx) {
    const Channel u = scheme.adjacency_at(w_i, idx);
    if (channel_free(available, u)) scratch.candidates.push_back(u);
  }
  WDM_DCHECK(!scratch.candidates.empty());

  // Grow-only: keep previously warmed assignments alive; each candidate run
  // resets its slot in place, so no per-slot allocation once warm.
  if (scratch.results.size() < scratch.candidates.size()) {
    scratch.results.resize(scratch.candidates.size(), ChannelAssignment(k));
  }
  const auto run_candidate = [&](std::size_t idx) {
    single_break_unchecked(requests, scheme, available, w_i,
                           scratch.candidates[idx], scratch.results[idx]);
  };
  if (pool != nullptr && scratch.candidates.size() > 1) {
    pool->parallel_for(0, scratch.candidates.size(), run_candidate);
  } else {
    for (std::size_t idx = 0; idx < scratch.candidates.size(); ++idx) {
      run_candidate(idx);
    }
  }

  // Deterministic winner: first candidate (minus-side order) of maximum size.
  std::size_t best = 0;
  for (std::size_t idx = 1; idx < scratch.candidates.size(); ++idx) {
    if (scratch.results[idx].granted > scratch.results[best].granted) {
      best = idx;
    }
  }
  out.source.assign(scratch.results[best].source.begin(),
                    scratch.results[best].source.end());
  out.granted = scratch.results[best].granted;
}

ChannelAssignment break_first_available(const RequestVector& requests,
                                        const ConversionScheme& scheme,
                                        std::span<const std::uint8_t> available,
                                        util::ThreadPool* pool) {
  BfaScratch scratch;
  ChannelAssignment out(scheme.k());
  break_first_available_into(requests, scheme, available, pool, scratch, out);
  return out;
}

Channel approx_break_first_available_into(
    const RequestVector& requests, const ConversionScheme& scheme,
    std::span<const std::uint8_t> available, ChannelAssignment& out) {
  validate_inputs(requests, scheme, available);
  const Wavelength w_i = pick_breaking_wavelength(requests, scheme, available);
  if (w_i == kNone) {
    out.reset(scheme.k());
    return kNone;
  }

  const std::int32_t d = scheme.degree();
  const std::int32_t delta_star = (d + 1) / 2;  // Corollary 1: "shortest" edge

  // Pick the available adjacent channel with the smallest Theorem-3 bound,
  // breaking ties toward the centre.
  Channel best_u = kNone;
  std::int32_t best_delta = 0;
  std::int32_t best_bound = 0;
  for (std::int32_t idx = 0; idx < d; ++idx) {
    const Channel u = scheme.adjacency_at(w_i, idx);
    if (!channel_free(available, u)) continue;
    const std::int32_t delta = idx + 1;
    const std::int32_t bound = breaking_gap_bound(d, delta);
    if (best_u == kNone || bound < best_bound ||
        (bound == best_bound &&
         std::abs(delta - delta_star) < std::abs(best_delta - delta_star))) {
      best_u = u;
      best_delta = delta;
      best_bound = bound;
    }
  }
  WDM_DCHECK(best_u != kNone);

  bfa_single_break_into(requests, scheme, available, w_i, best_u, out);
  return best_u;
}

namespace {

/// pick_breaking_wavelength over the packed masks: the nonempty mask jumps
/// straight to pending wavelengths, and the free-adjacent-channel test is a
/// word scan over the circular adjacency run. Returns the same wavelength
/// as the byte-row scan (existence of a free adjacent channel is all the
/// scalar inner loop establishes).
Wavelength pick_breaking_wavelength_masked(const ConversionScheme& scheme,
                                           const std::uint64_t* avail,
                                           const std::uint64_t* nonempty) {
  const std::int32_t k = scheme.k();
  for (Wavelength w = find_next_set(nonempty, k, 0); w < k;
       w = find_next_set(nonempty, k, w + 1)) {
    if (any_set_circular(avail, k, scheme.adjacency_start(w),
                         scheme.adjacency_count(w))) {
      return w;
    }
  }
  return kNone;
}

void validate_masked_inputs(const RequestVector& requests,
                            const ConversionScheme& scheme,
                            std::span<const std::uint64_t> avail_words,
                            std::span<const std::uint64_t> nonempty_words) {
  WDM_CHECK_MSG(scheme.kind() == ConversionKind::kCircular,
                "break_first_available requires a circular scheme; "
                "use first_available for non-circular conversion");
  WDM_CHECK_MSG(!scheme.is_full_range(),
                "full-range conversion is scheduled trivially (Section I)");
  WDM_CHECK_MSG(requests.k() == scheme.k(),
                "request vector and scheme disagree on k");
  WDM_CHECK_MSG(avail_words.size() == mask_words(scheme.k()) &&
                    nonempty_words.size() == mask_words(scheme.k()),
                "packed masks must have mask_words(k) words");
}

/// single_break_unchecked over the packed masks. Same state machine, two
/// jumps instead of two walks: the channel loop visits free channels via
/// find_next_set on the availability row (in the same rotated order vp =
/// 0..k-2, split at the wrap), and the left pointer hops between nonempty
/// wavelengths via find_next_set on the nonempty mask (the scalar advance()
/// steps through empty wavelengths without ever exiting its while loop, so
/// landing directly on the next pending wavelength reaches the identical
/// state). All modular quantities stay division-free closed forms.
void single_break_masked(const RequestVector& requests,
                         const ConversionScheme& scheme,
                         const std::uint64_t* avail,
                         const std::uint64_t* nonempty, Wavelength w_i,
                         Channel u, ChannelAssignment& out) {
  const std::int32_t k = scheme.k();
  const std::int32_t d = scheme.degree();
  const std::vector<std::int32_t>& counts = requests.counts();
  out.reset(k);
  out.source[static_cast<std::size_t>(u)] = w_i;
  out.granted = 1;

  const std::int32_t plus_side_span =
      fwd(w_i, mod_k(static_cast<std::int64_t>(u) + scheme.e(), k), k);
  const std::int32_t run_start0 =
      channel_to_rotated(u, scheme.adjacency_start(w_i), k);

  std::int32_t kappa = 0;
  Wavelength w = w_i;
  std::int32_t run_start = run_start0;
  std::int32_t remaining = counts[static_cast<std::size_t>(w_i)] - 1;
  const auto iv_of = [&](std::int32_t kappa_now) {
    const std::int32_t last = run_start + d - 1;  // may pass k-1 (wraps)
    if (last <= k - 2) return graph::Interval{run_start, last};
    if (kappa_now <= plus_side_span) return graph::Interval{0, last - k};
    return graph::Interval{run_start, k - 2};
  };
  graph::Interval iv = remaining > 0 ? iv_of(0) : graph::Interval{};

  // Jump to the next κ' > κ whose wavelength has a pending request, or set
  // κ = k when none is left. The search runs over the rotated wavelength
  // order w_i, w_i+1, ..., w_i-1 — at most two linear ranges of the mask.
  const auto advance_live = [&] {
    const std::int32_t steps_left = k - 1 - kappa;  // κ values after kappa
    if (steps_left <= 0) {
      kappa = k;
      return;
    }
    const Wavelength wn = w + 1 == k ? 0 : w + 1;  // wavelength at κ+1
    std::int32_t dist = -1;  // distance from wn to the found wavelength
    if (wn + steps_left <= k) {
      const std::int32_t nxt = find_next_set(nonempty, wn + steps_left, wn);
      if (nxt < wn + steps_left) dist = nxt - wn;
    } else {
      std::int32_t nxt = find_next_set(nonempty, k, wn);
      if (nxt < k) {
        dist = nxt - wn;
      } else {
        const std::int32_t wrap_hi = steps_left - (k - wn);
        nxt = find_next_set(nonempty, wrap_hi, 0);
        if (nxt < wrap_hi) dist = (k - wn) + nxt;
      }
    }
    if (dist < 0) {
      kappa = k;
      return;
    }
    kappa += 1 + dist;
    w = wn + dist >= k ? wn + dist - k : wn + dist;
    run_start = run_start0 + kappa >= k ? run_start0 + kappa - k
                                        : run_start0 + kappa;
    remaining = counts[static_cast<std::size_t>(w)];
    iv = iv_of(kappa);
  };

  const auto visit = [&](Channel v, std::int32_t vp) -> bool {
    while (kappa < k && (remaining == 0 || iv.empty() || iv.end < vp)) {
      advance_live();
    }
    if (kappa == k) return false;
    if (iv.begin <= vp) {
      WDM_DCHECK(scheme.can_convert(w, v));
      out.source[static_cast<std::size_t>(v)] = w;
      out.granted += 1;
      remaining -= 1;
    }
    return true;
  };

  // Rotated position vp of channel v is v-u-1 (mod k): segment [u+1, k)
  // first, then the wrapped segment [0, u). Position k-1 is u itself — the
  // breaking channel, never visited, exactly like the scalar vp <= k-2 loop.
  for (Channel v = find_next_set(avail, k, u + 1); v < k;
       v = find_next_set(avail, k, v + 1)) {
    if (!visit(v, v - u - 1)) return;
  }
  const std::int32_t wrap_base = k - u - 1;
  for (Channel v = find_next_set(avail, k, 0); v < u;
       v = find_next_set(avail, k, v + 1)) {
    if (!visit(v, v + wrap_base)) return;
  }
}

}  // namespace

void bfa_single_break_masked_into(
    const RequestVector& requests, const ConversionScheme& scheme,
    std::span<const std::uint64_t> avail_words,
    std::span<const std::uint64_t> nonempty_words, Wavelength w_i, Channel u,
    ChannelAssignment& out) {
  validate_masked_inputs(requests, scheme, avail_words, nonempty_words);
  WDM_CHECK_MSG(requests.count(w_i) > 0,
                "breaking wavelength must have a pending request");
  WDM_CHECK_MSG(scheme.can_convert(w_i, u), "breaking edge must exist");
  WDM_CHECK_MSG(mask_test(avail_words.data(), u),
                "breaking channel must be free");
  single_break_masked(requests, scheme, avail_words.data(),
                      nonempty_words.data(), w_i, u, out);
}

void break_first_available_masked_into(
    const RequestVector& requests, const ConversionScheme& scheme,
    std::span<const std::uint64_t> avail_words,
    std::span<const std::uint64_t> nonempty_words, util::ThreadPool* pool,
    BfaScratch& scratch, ChannelAssignment& out) {
  validate_masked_inputs(requests, scheme, avail_words, nonempty_words);
  const std::int32_t k = scheme.k();
  const std::uint64_t* avail = avail_words.data();
  const std::uint64_t* nonempty = nonempty_words.data();
  const Wavelength w_i =
      pick_breaking_wavelength_masked(scheme, avail, nonempty);
  if (w_i == kNone) {
    out.reset(k);
    return;
  }

  scratch.candidates.clear();
  const std::int32_t deg = scheme.adjacency_count(w_i);
  for (std::int32_t idx = 0; idx < deg; ++idx) {
    const Channel u = scheme.adjacency_at(w_i, idx);
    if (mask_test(avail, u)) scratch.candidates.push_back(u);
  }
  WDM_DCHECK(!scratch.candidates.empty());

  if (scratch.results.size() < scratch.candidates.size()) {
    scratch.results.resize(scratch.candidates.size(), ChannelAssignment(k));
  }
  const auto run_candidate = [&](std::size_t idx) {
    single_break_masked(requests, scheme, avail, nonempty, w_i,
                        scratch.candidates[idx], scratch.results[idx]);
  };
  if (pool != nullptr && scratch.candidates.size() > 1) {
    pool->parallel_for(0, scratch.candidates.size(), run_candidate);
  } else {
    for (std::size_t idx = 0; idx < scratch.candidates.size(); ++idx) {
      run_candidate(idx);
    }
  }

  // Deterministic winner: first candidate (minus-side order) of maximum size.
  std::size_t best = 0;
  for (std::size_t idx = 1; idx < scratch.candidates.size(); ++idx) {
    if (scratch.results[idx].granted > scratch.results[best].granted) {
      best = idx;
    }
  }
  out.source.assign(scratch.results[best].source.begin(),
                    scratch.results[best].source.end());
  out.granted = scratch.results[best].granted;
}

Channel approx_break_first_available_masked_into(
    const RequestVector& requests, const ConversionScheme& scheme,
    std::span<const std::uint64_t> avail_words,
    std::span<const std::uint64_t> nonempty_words, ChannelAssignment& out) {
  validate_masked_inputs(requests, scheme, avail_words, nonempty_words);
  const std::uint64_t* avail = avail_words.data();
  const Wavelength w_i = pick_breaking_wavelength_masked(
      scheme, avail, nonempty_words.data());
  if (w_i == kNone) {
    out.reset(scheme.k());
    return kNone;
  }

  const std::int32_t d = scheme.degree();
  const std::int32_t delta_star = (d + 1) / 2;  // Corollary 1: "shortest" edge

  Channel best_u = kNone;
  std::int32_t best_delta = 0;
  std::int32_t best_bound = 0;
  for (std::int32_t idx = 0; idx < d; ++idx) {
    const Channel u = scheme.adjacency_at(w_i, idx);
    if (!mask_test(avail, u)) continue;
    const std::int32_t delta = idx + 1;
    const std::int32_t bound = breaking_gap_bound(d, delta);
    if (best_u == kNone || bound < best_bound ||
        (bound == best_bound &&
         std::abs(delta - delta_star) < std::abs(best_delta - delta_star))) {
      best_u = u;
      best_delta = delta;
      best_bound = bound;
    }
  }
  WDM_DCHECK(best_u != kNone);

  single_break_masked(requests, scheme, avail, nonempty_words.data(), w_i,
                      best_u, out);
  return best_u;
}

ApproxBfaResult approx_break_first_available(
    const RequestVector& requests, const ConversionScheme& scheme,
    std::span<const std::uint8_t> available) {
  validate_inputs(requests, scheme, available);
  ApproxBfaResult out{ChannelAssignment(scheme.k()), kNone, 0, 0};
  const Wavelength w_i = pick_breaking_wavelength(requests, scheme, available);
  if (w_i == kNone) return out;

  const std::int32_t d = scheme.degree();
  const std::int32_t delta_star = (d + 1) / 2;  // Corollary 1: "shortest" edge

  Channel best_u = kNone;
  std::int32_t best_delta = 0;
  std::int32_t best_bound = 0;
  for (std::int32_t idx = 0; idx < d; ++idx) {
    const Channel u = scheme.adjacency_at(w_i, idx);
    if (!channel_free(available, u)) continue;
    const std::int32_t delta = idx + 1;
    const std::int32_t bound = breaking_gap_bound(d, delta);
    if (best_u == kNone || bound < best_bound ||
        (bound == best_bound &&
         std::abs(delta - delta_star) < std::abs(best_delta - delta_star))) {
      best_u = u;
      best_delta = delta;
      best_bound = bound;
    }
  }
  WDM_DCHECK(best_u != kNone);

  out.assignment = bfa_single_break(requests, scheme, available, w_i, best_u);
  out.break_channel = best_u;
  out.delta = best_delta;
  out.gap_bound = best_bound;
  return out;
}

}  // namespace wdm::core
