#include "core/request_graph.hpp"

#include "util/check.hpp"

namespace wdm::core {

std::vector<std::uint8_t> all_available(std::int32_t k) {
  WDM_CHECK(k > 0);
  return std::vector<std::uint8_t>(static_cast<std::size_t>(k), 1);
}

RequestGraph::RequestGraph(ConversionScheme scheme, const RequestVector& requests)
    : RequestGraph(std::move(scheme), requests, {}) {}

RequestGraph::RequestGraph(ConversionScheme scheme, const RequestVector& requests,
                           std::vector<std::uint8_t> available)
    : RequestGraph(std::move(scheme), requests, std::move(available),
                   HealthMask{}) {}

RequestGraph::RequestGraph(ConversionScheme scheme, const RequestVector& requests,
                           std::vector<std::uint8_t> available,
                           HealthMask health)
    : scheme_(std::move(scheme)),
      wavelengths_(requests.to_sorted_wavelengths()),
      available_(std::move(available)),
      health_(std::move(health)) {
  WDM_CHECK_MSG(requests.k() == scheme_.k(),
                "request vector and scheme disagree on k");
  if (available_.empty()) {
    available_ = all_available(scheme_.k());
  }
  WDM_CHECK_MSG(static_cast<std::int32_t>(available_.size()) == scheme_.k(),
                "availability mask must have one entry per channel");
  WDM_CHECK_MSG(health_.channels.empty() ||
                    static_cast<std::int32_t>(health_.channels.size()) ==
                        scheme_.k(),
                "health mask must be empty or have one entry per channel");
}

Wavelength RequestGraph::wavelength_of(std::int32_t j) const {
  WDM_CHECK(j >= 0 && j < n_requests());
  return wavelengths_[static_cast<std::size_t>(j)];
}

bool RequestGraph::channel_available(Channel u) const {
  WDM_CHECK(u >= 0 && u < k());
  return available_[static_cast<std::size_t>(u)] != 0;
}

bool RequestGraph::has_edge(std::int32_t j, Channel u) const {
  if (health_.fiber_faulted) return false;
  if (!channel_available(u)) return false;
  const Wavelength w = wavelength_of(j);
  switch (health_.channel(u)) {
    case ChannelHealth::kChannelFaulted:
      return false;
    case ChannelHealth::kConverterFaulted:
      return w == u;  // straight-through needs no converter
    case ChannelHealth::kHealthy:
      break;
  }
  return scheme_.can_convert(w, u);
}

graph::BipartiteGraph RequestGraph::to_bipartite() const {
  graph::BipartiteGraph g(n_requests(), k());
  if (health_.fiber_faulted) return g;
  for (std::int32_t j = 0; j < n_requests(); ++j) {
    for (const Channel u : scheme_.adjacency_list(wavelength_of(j))) {
      if (has_edge(j, u)) g.add_edge(j, u);
    }
  }
  return g;
}

graph::ConvexBipartiteGraph RequestGraph::to_convex() const {
  WDM_CHECK_MSG(scheme_.kind() == ConversionKind::kNonCircular,
                "only non-circular request graphs are convex (Section III)");
  for (const auto a : available_) {
    WDM_CHECK_MSG(a != 0, "to_convex requires all channels available");
  }
  WDM_CHECK_MSG(health_.all_healthy(),
                "a fault-reduced request graph is not convex");
  std::vector<graph::Interval> intervals;
  intervals.reserve(wavelengths_.size());
  for (const Wavelength w : wavelengths_) {
    intervals.push_back(scheme_.adjacency_plain(w));
  }
  return graph::ConvexBipartiteGraph(std::move(intervals), k());
}

}  // namespace wdm::core
