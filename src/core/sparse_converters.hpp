// Sparse wavelength conversion: scheduling with a converter budget.
//
// The Figure-1 architecture dedicates one converter to every output channel
// (N*k converters). The sparse-conversion literature the paper builds on
// (Ramaswami & Sasaki [13], Tripathi & Sivarajan [11]) asks how much of that
// hardware is actually needed: give each output fiber a *pool* of C shared
// converters; a grant whose source wavelength differs from its channel
// consumes one, straight-through grants consume none.
//
// Scheduling then maximises granted requests subject to at most C
// conversions — a budgeted matching problem, solved exactly here via
// successive cheapest augmenting paths (cardinality first, conversions as
// cost). Experiment E13 sweeps C and shows the classic sparse-conversion
// result: a small pool recovers nearly the full-converter throughput.
#pragma once

#include <cstdint>
#include <span>

#include "core/channel_assignment.hpp"
#include "core/conversion.hpp"
#include "core/request.hpp"

namespace wdm::core {

struct SparseConverterResult {
  ChannelAssignment assignment;
  std::int32_t conversions = 0;  ///< converters consumed (<= budget)
};

/// Largest schedule using at most `converter_budget` wavelength conversions
/// on this output fiber; among such schedules, one using the fewest.
/// `converter_budget >= k` is equivalent to the unconstrained maximum.
SparseConverterResult sparse_converter_schedule(
    const RequestVector& requests, const ConversionScheme& scheme,
    std::int32_t converter_budget,
    std::span<const std::uint8_t> available = {});

}  // namespace wdm::core
