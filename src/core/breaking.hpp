// Breaking a circular request graph (Definition 2, Lemmas 1–4, Figure 5).
//
// Breaking graph G at edge a_i b_u deletes a_i, b_u, their incident edges and
// every edge crossing a_i b_u. After rotating the vertex orders so that
// a_{i+1} / b_{u+1} come first, the reduced graph G' is staircase convex
// (Lemma 2), so the First Available rule applies.
//
// The construction here is O(1) per wavelength: the d-channel adjacency run
// of wavelength w occupies d consecutive *rotated* positions. If the run does
// not touch rotated position k-1 (which is b_u), it is untouched; if it does,
// crossing-edge deletion keeps exactly one of the two pieces the deleted
// position splits it into — the head piece [0, ...] for wavelengths on the
// plus side of the breaking vertex's wavelength (and the rest of that
// wavelength's own group, which follows a_i), the tail piece [..., k-2] for
// wavelengths on its minus side. The test suite validates this closed form
// against explicit edge deletion driven by the Definition-1 predicate.
//
// The breaking vertex a_i is always the *first* request of its wavelength
// group, so every other same-wavelength request has j > i. Lemma 4 permits
// any choice of a_i; fixing this one keeps the request-vector form exact.
#pragma once

#include <cstdint>

#include "core/conversion.hpp"
#include "core/request_graph.hpp"
#include "graph/bipartite_graph.hpp"
#include "graph/convex.hpp"

namespace wdm::core {

/// Rotated right coordinate of original channel v after breaking at channel
/// u: positions 0..k-2 are b_{u+1}, ..., b_{u-1}; position k-1 is b_u itself.
constexpr std::int32_t channel_to_rotated(Channel u, Channel v,
                                          std::int32_t k) noexcept {
  return fwd(mod_k(u + 1, k), v, k);
}

/// Inverse of channel_to_rotated.
constexpr Channel rotated_to_channel(Channel u, std::int32_t pos,
                                     std::int32_t k) noexcept {
  return mod_k(static_cast<std::int64_t>(u) + 1 + pos, k);
}

/// Adjacency interval (in rotated coordinates, over positions [0, k-2]) of a
/// request with wavelength `w` in the reduced graph obtained by breaking at
/// (a_i of wavelength w_i, channel u). For w == w_i this is the adjacency of
/// the group members *after* a_i (j > i). May be empty.
/// Requires a circular, non-full-range scheme and u adjacent to w_i.
graph::Interval reduced_adjacency(const ConversionScheme& scheme, Wavelength w_i,
                                  Channel u, Wavelength w);

/// Reference construction for tests: applies Definition 2 literally to the
/// vertex-level request graph `g` — removes a_i, b_u, incident edges, and
/// every edge that crosses a_i b_u per the Definition-1 predicate. Vertices
/// keep their original ids (a_i and b_u simply become isolated).
graph::BipartiteGraph reduced_graph_reference(const RequestGraph& g,
                                              std::int32_t i, Channel u);

}  // namespace wdm::core
