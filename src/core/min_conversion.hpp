// Converter-frugal scheduling: among all maximum matchings of a request
// graph, one engaging the fewest wavelength converters.
//
// In the Figure-1 architecture every output channel owns a converter, but a
// grant with source wavelength == channel index passes through unconverted —
// converted grants are what cost power (and, in sparse-converter designs,
// shared hardware). FA/BFA maximise cardinality only; this module computes
// the converter-optimal maximum matching (min-cost maximum matching with
// unit cost on converting edges) as a quality yardstick: experiment E11
// measures how many extra conversions the paper's fast algorithms pay.
#pragma once

#include <cstdint>
#include <span>

#include "core/channel_assignment.hpp"
#include "core/conversion.hpp"
#include "core/request.hpp"

namespace wdm::core {

struct MinConversionResult {
  ChannelAssignment assignment;
  std::int32_t conversions = 0;  ///< granted channels with source != channel
};

/// Maximum matching minimising the number of converting grants. Exact but
/// O(V^2 E) — a yardstick, not a per-slot scheduler.
MinConversionResult min_conversion_schedule(
    const RequestVector& requests, const ConversionScheme& scheme,
    std::span<const std::uint8_t> available = {});

/// Number of converting grants in an assignment (source[u] ∉ {kNone, u}).
std::int32_t conversions_used(const ChannelAssignment& assignment);

}  // namespace wdm::core
