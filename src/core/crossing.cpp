#include "core/crossing.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace wdm::core {

namespace {

/// Shared context for one Definition-1 evaluation.
struct Ctx {
  std::int32_t k, e, f;
};

}  // namespace

bool crosses(const RequestGraph& g, const Edge& x, const Edge& y) {
  const auto& s = g.scheme();
  WDM_CHECK_MSG(s.kind() == ConversionKind::kCircular,
                "crossing edges are defined for circular conversion");
  WDM_CHECK_MSG(g.has_edge(x.j, x.v) && g.has_edge(y.j, y.v),
                "both edges must exist in the request graph");
  const Ctx c{s.k(), s.e(), s.f()};
  const Wavelength wj = g.wavelength_of(x.j);
  const Wavelength wi = g.wavelength_of(y.j);
  const Channel v = x.v;
  const Channel u = y.v;

  if (wj != wi) {
    // Case 1.1: W(j) in [u-f+1, W(i)-1] and v in [u+1, W(j)+f].
    // Forward-distance form: walk from u-f; W(j) lies strictly before W(i).
    {
      const std::int32_t span = fwd(mod_k(u - c.f, c.k), wi, c.k);
      const std::int32_t pos = fwd(mod_k(u - c.f, c.k), wj, c.k);
      if (pos > 0 && pos < span) {
        const std::int32_t vspan = fwd(u, mod_k(wj + c.f, c.k), c.k);
        const std::int32_t vpos = fwd(u, v, c.k);
        if (vpos > 0 && vpos <= vspan) return true;
      }
    }
    // Case 1.2: W(j) in [W(i)+1, u-1+e] and v in [W(j)-e, u-1].
    {
      const std::int32_t span = fwd(wi, mod_k(u + c.e, c.k), c.k);
      const std::int32_t pos = fwd(wi, wj, c.k);
      if (pos > 0 && pos < span) {
        const std::int32_t vspan = fwd(mod_k(wj - c.e, c.k), u, c.k);
        const std::int32_t vpos = fwd(v, u, c.k);
        if (vpos > 0 && vpos <= vspan) return true;
      }
    }
    return false;
  }

  // Case 2: same wavelength — the left *indices* decide the orientation.
  if (x.j < y.j) {
    // Case 2.1: j < i and v in [u+1, W(j)+f].
    const std::int32_t vspan = fwd(u, mod_k(wj + c.f, c.k), c.k);
    const std::int32_t vpos = fwd(u, v, c.k);
    return vpos > 0 && vpos <= vspan;
  }
  if (x.j > y.j) {
    // Case 2.2: j > i and v in [W(j)-e, u-1].
    const std::int32_t vspan = fwd(mod_k(wj - c.e, c.k), u, c.k);
    const std::int32_t vpos = fwd(v, u, c.k);
    return vpos > 0 && vpos <= vspan;
  }
  return false;  // an edge does not cross itself
}

bool edges_cross(const RequestGraph& g, const Edge& x, const Edge& y) {
  return crosses(g, x, y) || crosses(g, y, x);
}

std::optional<std::pair<Edge, Edge>> find_crossing_pair(
    const RequestGraph& g, const graph::Matching& m) {
  std::vector<Edge> edges;
  for (std::int32_t j = 0; j < g.n_requests(); ++j) {
    const auto v = m.right_of(j);
    if (v != graph::kNoVertex) edges.push_back(Edge{j, v});
  }
  for (std::size_t a = 0; a < edges.size(); ++a) {
    for (std::size_t b = a + 1; b < edges.size(); ++b) {
      if (crosses(g, edges[a], edges[b])) return std::pair{edges[a], edges[b]};
      if (crosses(g, edges[b], edges[a])) return std::pair{edges[b], edges[a]};
    }
  }
  return std::nullopt;
}

std::int32_t uncross_matching(const RequestGraph& g, graph::Matching& m) {
  std::int32_t swaps = 0;
  // Termination: each Lemma-1 swap strictly decreases the lexicographic
  // potential (sum of squared adjacency positions, same-wavelength index
  // inversions); the cap below only guards against an implementation bug.
  const std::int32_t cap =
      static_cast<std::int32_t>(m.size() * m.size() + 1) * std::max(g.k(), 2);
  while (auto pair = find_crossing_pair(g, m)) {
    WDM_CHECK_MSG(swaps < cap, "uncross_matching failed to converge");
    // pair->first = a_j b_v crosses pair->second = a_i b_u.
    const Edge aj_bv = pair->first;
    const Edge ai_bu = pair->second;
    // Lemma 1 replacement edges must exist in G.
    WDM_DCHECK(g.has_edge(ai_bu.j, aj_bv.v));
    WDM_DCHECK(g.has_edge(aj_bv.j, ai_bu.v));
    m.unmatch_left(aj_bv.j);
    m.unmatch_left(ai_bu.j);
    m.match(ai_bu.j, aj_bv.v);
    m.match(aj_bv.j, ai_bu.v);
    swaps += 1;
  }
  return swaps;
}

std::int32_t delta_of(const ConversionScheme& scheme, Wavelength w, Channel u) {
  WDM_CHECK_MSG(scheme.kind() == ConversionKind::kCircular,
                "delta is defined for circular conversion");
  WDM_CHECK_MSG(scheme.can_convert(w, u), "u must be adjacent to w");
  return fwd(scheme.adjacency_start(w), u, scheme.k()) + 1;
}

std::int32_t breaking_gap_bound(std::int32_t d, std::int32_t delta) {
  WDM_CHECK(delta >= 1 && delta <= d);
  return std::max(delta - 1, d - delta);
}

}  // namespace wdm::core
