#include "core/breaking.hpp"

#include "core/crossing.hpp"
#include "util/check.hpp"

namespace wdm::core {

graph::Interval reduced_adjacency(const ConversionScheme& scheme, Wavelength w_i,
                                  Channel u, Wavelength w) {
  WDM_CHECK_MSG(scheme.kind() == ConversionKind::kCircular,
                "breaking applies to circular request graphs");
  WDM_CHECK_MSG(!scheme.is_full_range(),
                "full-range conversion is scheduled trivially, not by breaking");
  WDM_CHECK_MSG(scheme.can_convert(w_i, u), "breaking edge must exist");
  const std::int32_t k = scheme.k();
  const std::int32_t d = scheme.degree();

  // Rotated position of the first channel of w's adjacency run.
  const std::int32_t start =
      channel_to_rotated(u, scheme.adjacency_start(w), k);
  const std::int32_t last = start + d - 1;  // may reach past k-1 (wraps)

  if (last <= k - 2) {
    // Run does not touch b_u: adjacency unchanged, already a plain interval.
    return graph::Interval{start, last};
  }

  // Run covers rotated position k-1 (= b_u). Keep the head piece for the
  // breaking wavelength's own group and the wavelengths on its plus side up
  // to u + e; keep the tail piece for the minus side. Either piece may be
  // empty when b_u sits at the very end/beginning of the run.
  const std::int32_t plus_side_span = fwd(w_i, mod_k(u + scheme.e(), k), k);
  const std::int32_t kappa = fwd(w_i, w, k);
  if (kappa <= plus_side_span) {
    return graph::Interval{0, last - k};  // head: [u+1, w+f]
  }
  return graph::Interval{start, k - 2};  // tail: [w-e, u-1]
}

graph::BipartiteGraph reduced_graph_reference(const RequestGraph& g,
                                              std::int32_t i, Channel u) {
  WDM_CHECK_MSG(g.has_edge(i, u), "breaking edge must exist in the graph");
  const Edge breaking{i, u};
  graph::BipartiteGraph out(g.n_requests(), g.k());
  for (std::int32_t j = 0; j < g.n_requests(); ++j) {
    if (j == i) continue;  // a_i deleted
    for (const Channel v : g.scheme().adjacency_list(g.wavelength_of(j))) {
      if (v == u || !g.channel_available(v)) continue;  // b_u deleted
      const Edge edge{j, v};
      if (crosses(g, edge, breaking)) continue;  // crossing edges deleted
      out.add_edge(j, v);
    }
  }
  return out;
}

}  // namespace wdm::core
