#include "core/conversion.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace wdm::core {

ConversionScheme::ConversionScheme(ConversionKind kind, std::int32_t k,
                                   std::int32_t e, std::int32_t f)
    : kind_(kind), k_(k), e_(e), f_(f), d_(std::min(e + f + 1, k)) {
  WDM_CHECK_MSG(k > 0, "need at least one wavelength");
  WDM_CHECK_MSG(e >= 0 && f >= 0, "conversion ranges must be nonnegative");
  WDM_CHECK_MSG(e + f + 1 <= k,
                "conversion degree d = e + f + 1 must not exceed k");
}

ConversionScheme ConversionScheme::circular(std::int32_t k, std::int32_t e,
                                            std::int32_t f) {
  return ConversionScheme(ConversionKind::kCircular, k, e, f);
}

ConversionScheme ConversionScheme::non_circular(std::int32_t k, std::int32_t e,
                                                std::int32_t f) {
  return ConversionScheme(ConversionKind::kNonCircular, k, e, f);
}

ConversionScheme ConversionScheme::symmetric(ConversionKind kind, std::int32_t k,
                                             std::int32_t d) {
  WDM_CHECK_MSG(d >= 1 && d <= k, "conversion degree must be in [1, k]");
  const std::int32_t e = d / 2;        // extra slot goes to the minus side
  const std::int32_t f = d - 1 - e;
  return ConversionScheme(kind, k, e, f);
}

ConversionScheme ConversionScheme::full_range(std::int32_t k) {
  return ConversionScheme(ConversionKind::kCircular, k, k - 1, 0);
}

ConversionScheme ConversionScheme::none(std::int32_t k, ConversionKind kind) {
  return ConversionScheme(kind, k, 0, 0);
}

graph::Interval ConversionScheme::adjacency_plain(Wavelength in) const {
  WDM_CHECK_MSG(kind_ == ConversionKind::kNonCircular,
                "adjacency_plain is defined for non-circular schemes");
  WDM_CHECK(in >= 0 && in < k_);
  return graph::Interval{std::max<std::int32_t>(0, in - e_),
                         std::min<std::int32_t>(k_ - 1, in + f_)};
}

std::vector<Channel> ConversionScheme::adjacency_list(Wavelength in) const {
  WDM_CHECK(in >= 0 && in < k_);
  std::vector<Channel> out;
  if (kind_ == ConversionKind::kCircular) {
    out.reserve(static_cast<std::size_t>(d_));
    const Channel start = adjacency_start(in);
    for (std::int32_t s = 0; s < d_; ++s) out.push_back(mod_k(start + s, k_));
  } else {
    const auto iv = adjacency_plain(in);
    for (Channel c = iv.begin; c <= iv.end; ++c) out.push_back(c);
  }
  return out;
}

graph::BipartiteGraph ConversionScheme::conversion_graph() const {
  graph::BipartiteGraph g(k_, k_);
  for (Wavelength in = 0; in < k_; ++in) {
    for (const Channel out : adjacency_list(in)) g.add_edge(in, out);
  }
  return g;
}

}  // namespace wdm::core
