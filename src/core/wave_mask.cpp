#include "core/wave_mask.hpp"

#include "core/simd.hpp"

namespace wdm::core {

namespace {

void pack_portable(const std::uint8_t* bytes, std::int32_t k,
                   std::uint64_t* words) noexcept {
  mask_zero(words, k);
  for (std::int32_t i = 0; i < k; ++i) {
    if (bytes[static_cast<std::size_t>(i)] != 0) mask_set(words, i);
  }
}

}  // namespace

void pack_availability(std::span<const std::uint8_t> bytes, std::int32_t k,
                       std::uint64_t* words) noexcept {
  if (bytes.empty()) {
    mask_fill(words, k);
    return;
  }
#ifdef WDM_HAVE_AVX2_TU
  if (avx2_available()) {
    pack_availability_avx2(bytes.data(), k, words);
    return;
  }
#endif
  pack_portable(bytes.data(), k, words);
}

}  // namespace wdm::core
