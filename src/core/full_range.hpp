// Full-range conversion scheduling (Section I).
//
// With full-range converters every request can use every free channel, so
// requests are indistinguishable in the wavelength domain and scheduling is
// trivial: grant min(#requests, #free channels), assigning channels in index
// order. Implemented for completeness and as the d = k endpoint of the
// throughput experiments.
#pragma once

#include <cstdint>
#include <span>

#include "core/channel_assignment.hpp"
#include "core/request.hpp"

namespace wdm::core {

/// Grants as many requests as there are free channels; wavelengths are
/// consumed in index order, channels in index order.
ChannelAssignment full_range_schedule(const RequestVector& requests,
                                      std::span<const std::uint8_t> available = {});

/// As full_range_schedule, writing into caller-owned scratch: `out` is reset
/// and filled in place, allocation-free once the scratch is warm.
void full_range_schedule_into(const RequestVector& requests,
                              std::span<const std::uint8_t> available,
                              ChannelAssignment& out);

}  // namespace wdm::core
