#include "core/health.hpp"

#include "util/check.hpp"

namespace wdm::core {

bool HealthMask::all_healthy() const noexcept {
  if (fiber_faulted) return false;
  for (const auto h : channels) {
    if (h != ChannelHealth::kHealthy) return false;
  }
  return true;
}

HealthMask HealthMask::healthy(std::int32_t k) {
  WDM_CHECK(k > 0);
  HealthMask mask;
  mask.channels.assign(static_cast<std::size_t>(k), ChannelHealth::kHealthy);
  return mask;
}

HealthReduction apply_health(const RequestVector& requests,
                             std::span<const std::uint8_t> available,
                             const HealthMask& health) {
  const std::int32_t k = requests.k();
  WDM_CHECK_MSG(available.empty() ||
                    static_cast<std::int32_t>(available.size()) == k,
                "availability mask must be empty or size k");
  WDM_CHECK_MSG(health.channels.empty() ||
                    static_cast<std::int32_t>(health.channels.size()) == k,
                "health mask must be empty or size k");

  HealthReduction out(k);
  if (health.fiber_faulted) {
    // The fiber is cut: nothing survives. Callers reject with kFaulted
    // before scheduling, so this is a defensive all-unavailable instance.
    out.availability.assign(static_cast<std::size_t>(k), 0);
    return out;
  }

  std::vector<std::int32_t> counts = requests.counts();
  for (Channel u = 0; u < k; ++u) {
    const auto su = static_cast<std::size_t>(u);
    const bool free = available.empty() || available[su] != 0;
    out.availability[su] = free ? 1 : 0;
    switch (health.channel(u)) {
      case ChannelHealth::kHealthy:
        break;
      case ChannelHealth::kChannelFaulted:
        out.availability[su] = 0;
        break;
      case ChannelHealth::kConverterFaulted:
        // The channel's only surviving edge is to its own wavelength. If a
        // wavelength-u request exists and the channel is free, some maximum
        // matching of the fault-reduced graph grants u to one of them
        // (exchange argument: re-home any wavelength-u request matched
        // elsewhere), so pre-granting the pair and deleting u preserves the
        // maximum. If no such request exists, the channel is dead weight.
        if (free && counts[su] > 0) {
          counts[su] -= 1;
          out.pre_granted[su] = 1;
          out.pre_grant_count += 1;
        }
        out.availability[su] = 0;
        break;
    }
  }
  for (Wavelength w = 0; w < k; ++w) {
    out.requests.add(w, counts[static_cast<std::size_t>(w)]);
  }
  return out;
}

}  // namespace wdm::core
