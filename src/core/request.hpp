// Connection requests and request vectors (Section II.B).
//
// In a slot, the requests destined for one output fiber are summarised by a
// *request vector*: a 1 x k row of per-wavelength request counts. The O(k)
// and O(dk) schedulers operate purely on this vector — requests on the same
// wavelength are interchangeable for maximising the matching size; which
// individual request wins is a separate fairness (arbitration) decision.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "core/wavelength.hpp"
#include "util/check.hpp"

namespace wdm::core {

/// One unicast connection request as seen by an output-fiber scheduler.
struct Request {
  std::int32_t input_fiber = 0;   ///< source fiber index in [0, N)
  Wavelength wavelength = 0;      ///< arriving wavelength in [0, k)
  std::uint64_t id = 0;           ///< caller-assigned identity (fairness, tracing)
  std::int32_t duration = 1;      ///< holding time in slots (Section V)
};

/// Per-wavelength request counts for one output fiber in one slot.
class RequestVector {
 public:
  explicit RequestVector(std::int32_t k);
  /// E.g. RequestVector({2, 1, 0, 1, 1, 2}) — the paper's running example.
  RequestVector(std::initializer_list<std::int32_t> counts);

  std::int32_t k() const noexcept { return static_cast<std::int32_t>(counts_.size()); }
  std::int32_t total() const noexcept { return total_; }
  bool empty() const noexcept { return total_ == 0; }

  // count/add/clear are the per-request inner operations of every kernel's
  // hot loop, so they live in the header for inlining.
  std::int32_t count(Wavelength w) const {
    WDM_CHECK(w >= 0 && w < k());
    return counts_[static_cast<std::size_t>(w)];
  }

  void add(Wavelength w, std::int32_t n = 1) {
    WDM_CHECK(w >= 0 && w < k());
    WDM_CHECK_MSG(n >= 0, "cannot add a negative number of requests");
    counts_[static_cast<std::size_t>(w)] += n;
    total_ += n;
  }

  void clear() noexcept {
    counts_.assign(counts_.size(), 0);
    total_ = 0;
  }

  const std::vector<std::int32_t>& counts() const noexcept { return counts_; }

  /// Lowest wavelength with at least one request, or kNone.
  Wavelength first_nonempty() const noexcept;

  /// Expands to one wavelength per request, sorted ascending — the paper's
  /// left-side vertex order (requests of equal wavelength are adjacent).
  std::vector<Wavelength> to_sorted_wavelengths() const;

  friend bool operator==(const RequestVector&, const RequestVector&) = default;

 private:
  std::vector<std::int32_t> counts_;
  std::int32_t total_ = 0;
};

/// Builds the request vector of a batch of requests (k wavelengths).
RequestVector make_request_vector(std::int32_t k,
                                  const std::vector<Request>& requests);

}  // namespace wdm::core
