// AVX2 back-end for availability-row packing. This translation unit is the
// only one compiled with -mavx2 (see src/core/CMakeLists.txt); callers reach
// it through pack_availability()'s runtime cpu-support dispatch, so the
// binary still runs on non-AVX2 hosts.
#include "core/wave_mask.hpp"

#ifdef WDM_HAVE_AVX2_TU

#include <immintrin.h>

namespace wdm::core {

void pack_availability_avx2(const std::uint8_t* bytes, std::int32_t k,
                            std::uint64_t* words) noexcept {
  mask_zero(words, k);
  const __m256i zero = _mm256_setzero_si256();
  std::int32_t i = 0;
  for (; i + 32 <= k; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bytes + i));
    // movemask of (byte == 0) is the busy bits; the free bits are its
    // complement. The tail invariant holds because i+32 <= k here.
    const auto busy = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, zero)));
    const std::uint64_t free_bits = static_cast<std::uint32_t>(~busy);
    words[static_cast<std::size_t>(i) >> 6] |=
        free_bits << (static_cast<std::uint32_t>(i) & 63);
  }
  for (; i < k; ++i) {
    if (bytes[static_cast<std::size_t>(i)] != 0) mask_set(words, i);
  }
}

}  // namespace wdm::core

#endif  // WDM_HAVE_AVX2_TU
