// Iterative parallel matching (PIM / iSLIP style) for the WDM request graph.
//
// Real electronic switch schedulers rarely compute exact maximum matchings;
// they run a few rounds of parallel propose–grant–accept (PIM [7], iSLIP
// [8] — the works the paper cites for its arbitration stage). This module
// ports that scheme to the wavelength-conversion setting so the paper's
// exact algorithms can be compared against the industry-standard iterative
// heuristic (experiment E8's extended ablation):
//
//   each round, every still-unmatched request proposes to one free
//   admissible channel (uniformly at random, PIM-style); every channel
//   grants one proposer; grants are final (accepted).
//
// One round yields a matching that is maximal *in expectation* only; the
// classic result is that O(log k) rounds converge. Unlike First Available
// this is not optimal for any fixed round count — which is exactly the
// comparison worth making.
#pragma once

#include <cstdint>
#include <span>

#include "core/channel_assignment.hpp"
#include "core/conversion.hpp"
#include "core/request.hpp"
#include "util/rng.hpp"

namespace wdm::core {

/// Runs `iterations` propose–grant rounds. Works for any scheme kind
/// (it only uses can_convert). Deterministic in (inputs, rng state).
ChannelAssignment pim_schedule(const RequestVector& requests,
                               const ConversionScheme& scheme,
                               std::int32_t iterations, util::Rng& rng,
                               std::span<const std::uint8_t> available = {});

}  // namespace wdm::core
