// Priority (QoS) scheduling — the extension the paper's conclusion names as
// future work: "incorporating different QoS requirements, such as different
// priorities among connection requests, in the scheduling algorithm".
//
// Strict-priority semantics: requests are partitioned into classes (0 =
// highest). The scheduler grants class 0 a maximum matching of its own
// requests, removes the channels it used (exactly the Section-V
// occupied-channel mechanism), then repeats for class 1 on the residue, and
// so on. Properties, all verified by the test suite:
//
//  * class 0 is never penalised by lower classes — it gets exactly the
//    matching size it would get alone;
//  * every class gets a maximum matching of the channels the classes above
//    left over;
//  * the combined schedule is a valid matching, but may be smaller than the
//    best classless schedule — strict priority has a throughput price,
//    measured by bench_priority.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/channel_assignment.hpp"
#include "core/conversion.hpp"
#include "core/request.hpp"

namespace wdm::core {

struct PrioritySchedule {
  /// Combined channel map over all classes.
  ChannelAssignment combined;
  /// Per-class channel maps, in class order (0 = highest).
  std::vector<ChannelAssignment> per_class;
  /// Grants per class (== per_class[c].granted).
  std::vector<std::int32_t> granted_per_class;
};

/// Schedules `classes[0]`, `classes[1]`, ... in strict priority order.
/// Every class vector must have the scheme's k. The kernel is picked from
/// the scheme (FA, BFA, or the full-range rule). `available` masks channels
/// occupied before class 0 runs (Section V), empty = all free.
PrioritySchedule priority_schedule(const std::vector<RequestVector>& classes,
                                   const ConversionScheme& scheme,
                                   std::span<const std::uint8_t> available = {});

/// Single-class dispatch helper shared with the priority scheduler: runs the
/// scheme's maximum-matching kernel (Table 2 / Table 3 / full-range).
ChannelAssignment assign_maximum(const RequestVector& requests,
                                 const ConversionScheme& scheme,
                                 std::span<const std::uint8_t> available = {});

}  // namespace wdm::core
