#include "core/full_range.hpp"

#include "util/check.hpp"

namespace wdm::core {

ChannelAssignment full_range_schedule(const RequestVector& requests,
                                      std::span<const std::uint8_t> available) {
  ChannelAssignment out(requests.k());
  full_range_schedule_into(requests, available, out);
  return out;
}

void full_range_schedule_into(const RequestVector& requests,
                              std::span<const std::uint8_t> available,
                              ChannelAssignment& out) {
  const std::int32_t k = requests.k();
  WDM_CHECK_MSG(available.empty() ||
                    static_cast<std::int32_t>(available.size()) == k,
                "availability mask must have one entry per channel");
  out.reset(k);

  Wavelength w = 0;
  std::int32_t remaining = requests.count(0);
  for (Channel u = 0; u < k; ++u) {
    if (!available.empty() && available[static_cast<std::size_t>(u)] == 0) {
      continue;
    }
    while (w < k && remaining == 0) {
      ++w;
      remaining = w < k ? requests.count(w) : 0;
    }
    if (w == k) break;
    out.source[static_cast<std::size_t>(u)] = w;
    out.granted += 1;
    remaining -= 1;
  }
}

}  // namespace wdm::core
