// Break and First Available (paper Table 3, Theorem 2) and its
// single-break approximation (Section IV.C, Theorem 3) — O(dk) / O(k).
//
// For circular symmetric conversion, the scheduler fixes the first pending
// request a_i, breaks the request graph at each of a_i's d edges in turn,
// runs First Available on each staircase-convex reduced graph, and keeps the
// largest matching plus the breaking edge. By Lemmas 3 and 4 this is exact.
//
// The d single-break schedules are independent, so they can run concurrently
// ("d units of hardware" in the paper); pass a ThreadPool to do so.
//
// The approximation skips the exhaustive sweep and breaks only at the edge
// whose Theorem-3 gap bound max{δ(u)-1, d-δ(u)} is smallest — δ(u)=(d+1)/2,
// the "shortest" edge, when it is available — trading at most (d-1)/2
// granted requests for a d-fold speedup.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/channel_assignment.hpp"
#include "core/conversion.hpp"
#include "core/request.hpp"
#include "util/threadpool.hpp"

namespace wdm::core {

/// Reusable per-candidate buffers for the exhaustive sweep. Owned by the
/// caller (OutputPortScheduler keeps one per port) so that in steady state
/// the d candidate schedules of every slot run entirely in warm memory.
struct BfaScratch {
  std::vector<Channel> candidates;          ///< available breaking channels
  std::vector<ChannelAssignment> results;   ///< one assignment per candidate
};

/// Exact maximum-matching schedule for a circular, non-full-range scheme.
/// `available` is a size-k mask (1 = free); empty means all free. If `pool`
/// is non-null the d candidate breaks run on it in parallel.
ChannelAssignment break_first_available(const RequestVector& requests,
                                        const ConversionScheme& scheme,
                                        std::span<const std::uint8_t> available = {},
                                        util::ThreadPool* pool = nullptr);

/// As break_first_available, with caller-owned scratch: candidate buffers
/// live in `scratch` and the winning assignment is written into `out`.
/// Allocation-free once the scratch is warm.
void break_first_available_into(const RequestVector& requests,
                                const ConversionScheme& scheme,
                                std::span<const std::uint8_t> available,
                                util::ThreadPool* pool, BfaScratch& scratch,
                                ChannelAssignment& out);

/// One candidate of the exhaustive sweep: breaks at (first request of w_i,
/// channel u) and schedules the reduced graph with First Available. The
/// result includes the breaking grant itself. Exposed for tests and for the
/// hardware model. Requires requests.count(w_i) > 0 and u adjacent & free.
ChannelAssignment bfa_single_break(const RequestVector& requests,
                                   const ConversionScheme& scheme,
                                   std::span<const std::uint8_t> available,
                                   Wavelength w_i, Channel u);

/// As bfa_single_break, writing into caller-owned scratch.
void bfa_single_break_into(const RequestVector& requests,
                           const ConversionScheme& scheme,
                           std::span<const std::uint8_t> available,
                           Wavelength w_i, Channel u, ChannelAssignment& out);

struct ApproxBfaResult {
  ChannelAssignment assignment;
  Channel break_channel = kNone;   ///< chosen u (kNone if nothing to schedule)
  std::int32_t delta = 0;          ///< δ(u) of the chosen break
  std::int32_t gap_bound = 0;      ///< Theorem-3 bound for this break
};

/// Section IV.C approximation: single break at the best-bounded available
/// edge. The matching is within `gap_bound` of maximum (Theorem 3).
ApproxBfaResult approx_break_first_available(
    const RequestVector& requests, const ConversionScheme& scheme,
    std::span<const std::uint8_t> available = {});

/// As approx_break_first_available, writing the assignment into caller-owned
/// scratch; returns the chosen break channel (kNone when nothing schedules).
Channel approx_break_first_available_into(
    const RequestVector& requests, const ConversionScheme& scheme,
    std::span<const std::uint8_t> available, ChannelAssignment& out);

// --- Masked kernels (docs/ALGORITHMS.md §9) -------------------------------
//
// Word-at-a-time variants of the sweeps above, decision-for-decision
// identical to the scalar reference: `avail_words` is the packed
// availability row (bit = 1 free, mask_words(k) words, tail zero — see
// core/wave_mask.hpp) and `nonempty_words` the packed nonempty-wavelength
// mask (bit w set iff requests.count(w) > 0). The inner sweeps jump with
// countr_zero over exactly the iterations the scalar loops no-op on —
// occupied channels and empty wavelengths — so every grant lands on the
// same (channel, wavelength) pair in the same order, and the assignments
// (hence arbitration, hence decisions) are bit-identical. The fuzz oracle
// and the exhaustive k<=6 enumeration pin this.

/// Masked exhaustive sweep (Table 3). Same winner rule as the scalar
/// variant: first candidate in minus-side order of maximum granted.
void break_first_available_masked_into(
    const RequestVector& requests, const ConversionScheme& scheme,
    std::span<const std::uint64_t> avail_words,
    std::span<const std::uint64_t> nonempty_words, util::ThreadPool* pool,
    BfaScratch& scratch, ChannelAssignment& out);

/// Masked single-break (one Table-3 candidate), identical to
/// bfa_single_break_into. Requires requests.count(w_i) > 0 and u adjacent
/// and free.
void bfa_single_break_masked_into(
    const RequestVector& requests, const ConversionScheme& scheme,
    std::span<const std::uint64_t> avail_words,
    std::span<const std::uint64_t> nonempty_words, Wavelength w_i, Channel u,
    ChannelAssignment& out);

/// Masked Section IV.C approximation, identical break choice and schedule
/// to approx_break_first_available_into.
Channel approx_break_first_available_masked_into(
    const RequestVector& requests, const ConversionScheme& scheme,
    std::span<const std::uint64_t> avail_words,
    std::span<const std::uint64_t> nonempty_words, ChannelAssignment& out);

}  // namespace wdm::core
