#include "core/scheduler.hpp"

#include <algorithm>
#include <numeric>

#include "core/break_first_available.hpp"
#include "core/first_available.hpp"
#include "core/full_range.hpp"
#include "core/request_graph.hpp"
#include "core/simd.hpp"
#include "core/sparse_converters.hpp"
#include "core/wave_mask.hpp"
#include "graph/glover.hpp"
#include "graph/greedy.hpp"
#include "graph/hopcroft_karp.hpp"
#include "util/check.hpp"

namespace wdm::core {

namespace {

Algorithm resolve(Algorithm requested, const ConversionScheme& scheme) {
  if (requested != Algorithm::kAuto) return requested;
  if (scheme.is_full_range()) return Algorithm::kFullRange;
  return scheme.kind() == ConversionKind::kCircular
             ? Algorithm::kBreakFirstAvailable
             : Algorithm::kFirstAvailable;
}

/// Compacts a plain adjacency interval onto the available channels:
/// prefix[v] = number of available channels with index < v. An interval of
/// channels maps to an interval of compact indices (possibly empty), which
/// is how Section V's right-vertex deletion preserves convexity.
graph::Interval compact_interval(const graph::Interval& iv,
                                 const std::vector<std::int32_t>& prefix) {
  const auto lo = prefix[static_cast<std::size_t>(iv.begin)];
  const auto hi = prefix[static_cast<std::size_t>(iv.end) + 1] - 1;
  return graph::Interval{lo, hi};
}

}  // namespace

const char* to_string(RejectReason reason) noexcept {
  switch (reason) {
    case RejectReason::kGranted: return "granted";
    case RejectReason::kUndecided: return "undecided";
    case RejectReason::kNoChannel: return "no-channel";
    case RejectReason::kInvalidOutputFiber: return "invalid-output-fiber";
    case RejectReason::kInvalidWavelength: return "invalid-wavelength";
    case RejectReason::kInvalidInputFiber: return "invalid-input-fiber";
    case RejectReason::kInvalidDuration: return "invalid-duration";
    case RejectReason::kInvalidPriority: return "invalid-priority";
    case RejectReason::kBadAvailabilityMask: return "bad-availability-mask";
    case RejectReason::kInternalError: return "internal-error";
    case RejectReason::kFaulted: return "faulted";
    case RejectReason::kBadHealthMask: return "bad-health-mask";
    case RejectReason::kShedOverload: return "shed-overload";
  }
  return "unknown";
}

RejectReason validate_request(const Request& r, std::int32_t k) noexcept {
  if (r.wavelength < 0 || r.wavelength >= k) {
    return RejectReason::kInvalidWavelength;
  }
  if (r.input_fiber < 0) return RejectReason::kInvalidInputFiber;
  if (r.duration < 1) return RejectReason::kInvalidDuration;
  return RejectReason::kGranted;
}

OutputPortScheduler::OutputPortScheduler(ConversionScheme scheme,
                                         Algorithm algorithm,
                                         Arbitration arbitration,
                                         std::uint64_t seed,
                                         util::ThreadPool* pool)
    : scheme_(std::move(scheme)),
      algorithm_(resolve(algorithm, scheme_)),
      arbitration_(arbitration),
      rng_(seed),
      pool_(pool),
      converter_budget_(scheme_.k()),
      rr_cursor_(static_cast<std::size_t>(scheme_.k()), 0),
      rv_scratch_(scheme_.k()),
      assign_scratch_(scheme_.k()),
      avail_bits_(mask_words(scheme_.k()), 0),
      nonempty_bits_(mask_words(scheme_.k()), 0) {
  switch (algorithm_) {
    case Algorithm::kFirstAvailable:
    case Algorithm::kGlover:
      WDM_CHECK_MSG(scheme_.kind() == ConversionKind::kNonCircular,
                    "this algorithm requires non-circular conversion");
      break;
    case Algorithm::kBreakFirstAvailable:
    case Algorithm::kApproxBfa:
      WDM_CHECK_MSG(scheme_.kind() == ConversionKind::kCircular &&
                        !scheme_.is_full_range(),
                    "this algorithm requires circular, non-full conversion");
      break;
    case Algorithm::kFullRange:
      WDM_CHECK_MSG(scheme_.is_full_range(),
                    "full-range rule requires a full-range scheme");
      break;
    case Algorithm::kHopcroftKarp:
    case Algorithm::kGreedyMaximal:
    case Algorithm::kSparseBudgeted:
      break;
    case Algorithm::kAuto:
      WDM_CHECK_MSG(false, "kAuto must have been resolved");
      break;
  }
}

void OutputPortScheduler::set_converter_budget(std::int32_t budget) {
  WDM_CHECK_MSG(budget >= 0, "converter budget must be nonnegative");
  converter_budget_ = budget;
}

ChannelAssignment OutputPortScheduler::assign_channels(
    const RequestVector& requests, std::span<const std::uint8_t> available) {
  switch (algorithm_) {
    case Algorithm::kFirstAvailable:
      return first_available(requests, scheme_, available);
    case Algorithm::kBreakFirstAvailable:
      return break_first_available(requests, scheme_, available, pool_);
    case Algorithm::kApproxBfa:
      return approx_break_first_available(requests, scheme_, available)
          .assignment;
    case Algorithm::kFullRange:
      return full_range_schedule(requests, available);
    case Algorithm::kSparseBudgeted:
      return sparse_converter_schedule(requests, scheme_, converter_budget_,
                                       available)
          .assignment;
    case Algorithm::kGlover: {
      // Compact occupied channels away so the graph stays convex, run
      // Glover's algorithm, then map matched columns back to channels.
      const std::int32_t k = scheme_.k();
      std::vector<std::int32_t> prefix(static_cast<std::size_t>(k) + 1, 0);
      std::vector<Channel> channel_of_compact;
      for (Channel v = 0; v < k; ++v) {
        const bool free =
            available.empty() || available[static_cast<std::size_t>(v)] != 0;
        prefix[static_cast<std::size_t>(v) + 1] =
            prefix[static_cast<std::size_t>(v)] + (free ? 1 : 0);
        if (free) channel_of_compact.push_back(v);
      }
      const auto wavelengths = requests.to_sorted_wavelengths();
      std::vector<graph::Interval> intervals;
      intervals.reserve(wavelengths.size());
      for (const Wavelength w : wavelengths) {
        intervals.push_back(
            compact_interval(scheme_.adjacency_plain(w), prefix));
      }
      const graph::ConvexBipartiteGraph convex(
          std::move(intervals),
          static_cast<graph::VertexId>(channel_of_compact.size()));
      const graph::Matching m = graph::glover_maximum_matching(convex);
      ChannelAssignment out(k);
      for (graph::VertexId col = 0;
           col < static_cast<graph::VertexId>(channel_of_compact.size());
           ++col) {
        const graph::VertexId j = m.left_of(col);
        if (j == graph::kNoVertex) continue;
        const Channel v = channel_of_compact[static_cast<std::size_t>(col)];
        out.source[static_cast<std::size_t>(v)] =
            wavelengths[static_cast<std::size_t>(j)];
        out.granted += 1;
      }
      return out;
    }
    case Algorithm::kHopcroftKarp:
    case Algorithm::kGreedyMaximal: {
      std::vector<std::uint8_t> mask(available.begin(), available.end());
      const RequestGraph g(scheme_, requests, std::move(mask));
      const graph::Matching m =
          algorithm_ == Algorithm::kHopcroftKarp
              ? graph::hopcroft_karp(g.to_bipartite())
              : graph::greedy_maximal_matching(g.to_bipartite(), rng_);
      ChannelAssignment out(scheme_.k());
      for (Channel v = 0; v < scheme_.k(); ++v) {
        const graph::VertexId j = m.left_of(v);
        if (j == graph::kNoVertex) continue;
        out.source[static_cast<std::size_t>(v)] = g.wavelength_of(j);
        out.granted += 1;
      }
      return out;
    }
    case Algorithm::kAuto:
      break;
  }
  util::check_failed("algorithm dispatch", __FILE__, __LINE__, "unreachable");
}

ChannelAssignment OutputPortScheduler::assign_channels(
    const RequestVector& requests, std::span<const std::uint8_t> available,
    const HealthMask& health, bool degraded) {
  if (health.fiber_faulted) return ChannelAssignment(scheme_.k());
  if (health.all_healthy() && !degraded) {
    return assign_channels(requests, available);
  }
  if (health.all_healthy()) {
    ChannelAssignment out(scheme_.k());
    assign_channels_into(requests, available, out, degraded);
    return out;
  }
  const HealthReduction red = apply_health(requests, available, health);
  ChannelAssignment out(scheme_.k());
  assign_channels_into(red.requests, red.availability, out, degraded);
  for (Channel u = 0; u < scheme_.k(); ++u) {
    if (red.pre_granted[static_cast<std::size_t>(u)] == 0) continue;
    WDM_DCHECK(out.source[static_cast<std::size_t>(u)] == kNone);
    out.source[static_cast<std::size_t>(u)] = u;
    out.granted += 1;
  }
  return out;
}

void OutputPortScheduler::assign_channels_into(
    const RequestVector& requests, std::span<const std::uint8_t> available,
    ChannelAssignment& out, bool degraded) {
  switch (algorithm_) {
    case Algorithm::kFirstAvailable:
      first_available_into(requests, scheme_, available, out);
      return;
    case Algorithm::kBreakFirstAvailable:
      if (degraded) {
        // Overload degeneration: the Theorem-1 ladder — one break instead
        // of the exhaustive d-way sweep, O(k) instead of O(dk), within
        // (d-1)/2 of the maximum (Theorem 3).
        approx_break_first_available_into(requests, scheme_, available, out);
        return;
      }
      break_first_available_into(requests, scheme_, available, pool_,
                                 bfa_scratch_, out);
      return;
    case Algorithm::kApproxBfa:
      approx_break_first_available_into(requests, scheme_, available, out);
      return;
    case Algorithm::kFullRange:
      full_range_schedule_into(requests, available, out);
      return;
    default:
      // The baseline graph algorithms build their graphs afresh every call;
      // copy the result into the scratch so callers see one contract.
      out = assign_channels(requests, available);
      return;
  }
}

std::vector<PortDecision> OutputPortScheduler::schedule(
    std::span<const Request> requests, std::span<const std::uint8_t> available,
    const HealthMask* health) {
  std::vector<PortDecision> decisions(requests.size());
  schedule_into(requests, available, health, decisions);
  return decisions;
}

bool OutputPortScheduler::use_masked_kernels() const noexcept {
  if (!simd_enabled()) return false;
  return algorithm_ == Algorithm::kFirstAvailable ||
         algorithm_ == Algorithm::kBreakFirstAvailable ||
         algorithm_ == Algorithm::kApproxBfa;
}

void OutputPortScheduler::masked_assign_channels_into(
    const RequestVector& requests, std::span<const std::uint64_t> avail_words,
    ChannelAssignment& out, bool degraded) {
  const std::span<const std::uint64_t> nonempty(nonempty_bits_.data(),
                                                nonempty_bits_.size());
  switch (algorithm_) {
    case Algorithm::kFirstAvailable:
      first_available_masked_into(requests, scheme_, avail_words, nonempty,
                                  out);
      return;
    case Algorithm::kBreakFirstAvailable:
      if (degraded) {
        approx_break_first_available_masked_into(requests, scheme_,
                                                 avail_words, nonempty, out);
        return;
      }
      break_first_available_masked_into(requests, scheme_, avail_words,
                                        nonempty, pool_, bfa_scratch_, out);
      return;
    case Algorithm::kApproxBfa:
      approx_break_first_available_masked_into(requests, scheme_, avail_words,
                                               nonempty, out);
      return;
    default:
      break;
  }
  util::check_failed("masked dispatch", __FILE__, __LINE__, "unreachable");
}

template <typename WaveFn>
void OutputPortScheduler::arbitrate_into(std::size_t n_requests,
                                         WaveFn&& wavelength_of,
                                         std::span<PortDecision> decisions) {
  const std::int32_t k = scheme_.k();
  const ChannelAssignment& assignment = assign_scratch_;

  // Channels won by each wavelength, in increasing channel order, laid out
  // as CSR (counting sort over the assignment; stability keeps the channel
  // order the nested-vector implementation produced).
  const auto uw = [](std::int32_t x) { return static_cast<std::size_t>(x); };
  if (assignment.granted == 0) {
    // Nothing won: every surviving request is a capacity rejection.
    for (auto& d : decisions) {
      if (d.reason == RejectReason::kUndecided) {
        d = PortDecision::reject(RejectReason::kNoChannel);
      }
    }
    return;
  }
  won_offsets_.assign(uw(k) + 1, 0);
  for (Channel v = 0; v < k; ++v) {
    const Wavelength w = assignment.source[uw(v)];
    if (w != kNone) won_offsets_[uw(w) + 1] += 1;
  }
  for (std::size_t w = 0; w < uw(k); ++w) {
    won_offsets_[w + 1] += won_offsets_[w];
  }
  won_flat_.resize(won_offsets_[uw(k)]);
  csr_cursor_.assign(won_offsets_.begin(), won_offsets_.end() - 1);
  for (Channel v = 0; v < k; ++v) {
    const Wavelength w = assignment.source[uw(v)];
    if (w == kNone) continue;
    won_flat_[csr_cursor_[uw(w)]++] = v;
  }

  if (arbitration_ == Arbitration::kFifo) {
    // FIFO needs no per-wavelength member lists: the winners for wavelength
    // w are the first grant-count surviving requests carrying w in arrival
    // order, and they take w's won channels in increasing channel order —
    // one pass over the requests with csr_cursor_ as the per-wavelength
    // next-channel cursor reproduces the CSR path decision for decision.
    csr_cursor_.assign(won_offsets_.begin(), won_offsets_.end() - 1);
    for (std::size_t idx = 0; idx < n_requests; ++idx) {
      if (decisions[idx].reason != RejectReason::kUndecided) continue;
      const std::size_t w = uw(wavelength_of(idx));
      auto& cursor = csr_cursor_[w];
      if (cursor < won_offsets_[w + 1]) {
        decisions[idx] = PortDecision::grant(won_flat_[cursor++]);
      } else {
        decisions[idx] = PortDecision::reject(RejectReason::kNoChannel);
      }
    }
    return;
  }

  // Competing request indices per wavelength, in arrival (input) order —
  // again a stable counting sort. Malformed requests were rejected above
  // and never compete.
  member_offsets_.assign(uw(k) + 1, 0);
  for (std::size_t idx = 0; idx < n_requests; ++idx) {
    if (decisions[idx].reason != RejectReason::kUndecided) continue;
    member_offsets_[uw(wavelength_of(idx)) + 1] += 1;
  }
  for (std::size_t w = 0; w < uw(k); ++w) {
    member_offsets_[w + 1] += member_offsets_[w];
  }
  member_flat_.resize(member_offsets_[uw(k)]);
  csr_cursor_.assign(member_offsets_.begin(), member_offsets_.end() - 1);
  for (std::size_t idx = 0; idx < n_requests; ++idx) {
    if (decisions[idx].reason != RejectReason::kUndecided) continue;
    member_flat_[csr_cursor_[uw(wavelength_of(idx))]++] =
        static_cast<std::uint32_t>(idx);
  }

  for (Wavelength w = 0; w < k; ++w) {
    const std::size_t won_lo = won_offsets_[uw(w)];
    const std::size_t won_hi = won_offsets_[uw(w) + 1];
    if (won_lo == won_hi) continue;
    const std::size_t n_won = won_hi - won_lo;
    const std::span<std::uint32_t> group{
        member_flat_.data() + member_offsets_[uw(w)],
        member_offsets_[uw(w) + 1] - member_offsets_[uw(w)]};
    WDM_DCHECK(n_won <= group.size());

    // Arbitration: choose |won| winners among the group (Section III:
    // "a random selecting or a round-robin scheduling procedure").
    switch (arbitration_) {
      case Arbitration::kFifo:
        for (std::size_t t = 0; t < n_won; ++t) {
          decisions[group[t]] = PortDecision::grant(won_flat_[won_lo + t]);
        }
        break;
      case Arbitration::kRoundRobin: {
        auto& cursor = rr_cursor_[uw(w)];
        const std::size_t n = group.size();
        for (std::size_t t = 0; t < n_won; ++t) {
          decisions[group[(cursor + t) % n]] =
              PortDecision::grant(won_flat_[won_lo + t]);
        }
        cursor = static_cast<std::uint32_t>((cursor + n_won) % n);
        break;
      }
      case Arbitration::kRandom: {
        // Rng::shuffle draws depend only on the group length, so the
        // narrower uint32 elements leave the winner sequence unchanged.
        rng_.shuffle(group);
        for (std::size_t t = 0; t < n_won; ++t) {
          decisions[group[t]] = PortDecision::grant(won_flat_[won_lo + t]);
        }
        break;
      }
    }
  }
  // Everything still undecided competed and lost: an explicit capacity
  // rejection, so no decision ever leaves here as kUndecided.
  for (auto& d : decisions) {
    if (!d.granted && d.reason == RejectReason::kUndecided) {
      d = PortDecision::reject(RejectReason::kNoChannel);
    }
  }
}

void OutputPortScheduler::schedule_into(
    std::span<const Request> requests, std::span<const std::uint8_t> available,
    const HealthMask* health, std::span<PortDecision> decisions, bool degraded,
    std::span<const std::uint64_t> avail_bits) {
  WDM_CHECK_MSG(decisions.size() == requests.size(),
                "one decision slot per request");
  const std::int32_t k = scheme_.k();
  std::fill(decisions.begin(), decisions.end(), PortDecision{});

  // Externally supplied data never aborts the slot: a wrong-shaped mask or a
  // malformed request yields per-request rejections instead of a WDM_CHECK
  // throw (the kernels below still enforce their contracts).
  if (!available.empty() &&
      static_cast<std::int32_t>(available.size()) != k) {
    for (auto& d : decisions) {
      d = PortDecision::reject(RejectReason::kBadAvailabilityMask);
    }
    return;
  }
  if (health != nullptr) {
    if (!health->channels.empty() &&
        static_cast<std::int32_t>(health->channels.size()) != k) {
      for (auto& d : decisions) {
        d = PortDecision::reject(RejectReason::kBadHealthMask);
      }
      return;
    }
    // A fiber cut outranks per-request validation: nothing on a dead fiber
    // is inspected, everything is rejected as faulted.
    if (health->fiber_faulted) {
      for (auto& d : decisions) {
        d = PortDecision::reject(RejectReason::kFaulted);
      }
      return;
    }
    if (health->all_healthy()) health = nullptr;
  }

  const bool masked = health == nullptr && use_masked_kernels();
  if (masked) mask_zero(nonempty_bits_.data(), k);
  rv_scratch_.clear();
  for (std::size_t idx = 0; idx < requests.size(); ++idx) {
    const RejectReason reason = validate_request(requests[idx], k);
    if (reason != RejectReason::kGranted) {
      decisions[idx] = PortDecision::reject(reason);
      continue;
    }
    rv_scratch_.add(requests[idx].wavelength);
    if (masked) mask_set(nonempty_bits_.data(), requests[idx].wavelength);
  }

  if (health != nullptr) {
    // Fault reduction allocates; degraded slots are rare, so this path is
    // deliberately outside the zero-allocation contract.
    assign_scratch_ = assign_channels(rv_scratch_, available, *health, degraded);
  } else if (masked) {
    const std::size_t words = mask_words(k);
    std::span<const std::uint64_t> avail_words = avail_bits;
    if (avail_words.size() != words) {
      pack_availability(available, k, avail_bits_.data());
      avail_words = std::span<const std::uint64_t>(avail_bits_.data(), words);
    }
    masked_assign_channels_into(rv_scratch_, avail_words, assign_scratch_,
                                degraded);
  } else {
    assign_channels_into(rv_scratch_, available, assign_scratch_, degraded);
  }

  arbitrate_into(
      requests.size(),
      [&requests](std::size_t idx) { return requests[idx].wavelength; },
      decisions);
}

void OutputPortScheduler::schedule_batch_into(
    std::span<const std::int32_t> wavelengths,
    std::span<const std::int32_t> input_fibers,
    std::span<const std::int32_t> durations,
    std::span<const std::uint8_t> available,
    std::span<const std::uint64_t> avail_bits,
    std::span<PortDecision> decisions, bool degraded) {
  WDM_CHECK_MSG(decisions.size() == wavelengths.size() &&
                    input_fibers.size() == wavelengths.size() &&
                    durations.size() == wavelengths.size(),
                "one decision slot per request and equal column lengths");
  const std::int32_t k = scheme_.k();
  std::fill(decisions.begin(), decisions.end(), PortDecision{});
  if (!available.empty() &&
      static_cast<std::int32_t>(available.size()) != k) {
    for (auto& d : decisions) {
      d = PortDecision::reject(RejectReason::kBadAvailabilityMask);
    }
    return;
  }

  const bool masked = use_masked_kernels();
  if (masked) mask_zero(nonempty_bits_.data(), k);
  rv_scratch_.clear();
  for (std::size_t idx = 0; idx < wavelengths.size(); ++idx) {
    // Column validation in the exact field order of validate_request, so
    // the rejection reasons match the AoS path field for field. The accept
    // test is a single predicted branch; the cold path walks the fields in
    // order to name the reason.
    const std::int32_t w = wavelengths[idx];
    if (w >= 0 && w < k && input_fibers[idx] >= 0 && durations[idx] >= 1) {
      rv_scratch_.add(w);
      if (masked) mask_set(nonempty_bits_.data(), w);
      continue;
    }
    if (w < 0 || w >= k) {
      decisions[idx] = PortDecision::reject(RejectReason::kInvalidWavelength);
    } else if (input_fibers[idx] < 0) {
      decisions[idx] = PortDecision::reject(RejectReason::kInvalidInputFiber);
    } else {
      decisions[idx] = PortDecision::reject(RejectReason::kInvalidDuration);
    }
  }

  if (masked) {
    const std::size_t words = mask_words(k);
    std::span<const std::uint64_t> avail_words = avail_bits;
    if (avail_words.size() != words) {
      pack_availability(available, k, avail_bits_.data());
      avail_words = std::span<const std::uint64_t>(avail_bits_.data(), words);
    }
    masked_assign_channels_into(rv_scratch_, avail_words, assign_scratch_,
                                degraded);
  } else {
    assign_channels_into(rv_scratch_, available, assign_scratch_, degraded);
  }

  arbitrate_into(
      wavelengths.size(),
      [&wavelengths](std::size_t idx) { return wavelengths[idx]; }, decisions);
}

void OutputPortScheduler::reserve_batch(std::size_t max_requests) {
  // won_flat_ holds at most one entry per channel; member_flat_ one per
  // surviving request of the batch. The offset/cursor arrays are fixed at
  // k+1 and reach capacity on the first slot regardless.
  won_flat_.reserve(static_cast<std::size_t>(scheme_.k()));
  member_flat_.reserve(max_requests);
}

void OutputPortScheduler::save_state(util::SnapshotWriter& w) const {
  const auto rng = rng_.state();
  for (const auto word : rng.s) w.u64(word);
  w.u64(rng.split_counter);
  w.u64(rr_cursor_.size());
  for (const auto c : rr_cursor_) w.u32(c);
}

void OutputPortScheduler::restore_state(util::SnapshotReader& r) {
  util::Rng::State rng;
  for (auto& word : rng.s) word = r.u64();
  rng.split_counter = r.u64();
  rng_.restore(rng);
  const std::uint64_t n = r.u64();
  WDM_CHECK_MSG(n == rr_cursor_.size(),
                "snapshot round-robin state does not match this port's k");
  for (auto& c : rr_cursor_) c = r.u32();
}

}  // namespace wdm::core
