#include "core/scheduler.hpp"

#include <algorithm>
#include <numeric>

#include "core/break_first_available.hpp"
#include "core/first_available.hpp"
#include "core/full_range.hpp"
#include "core/request_graph.hpp"
#include "core/sparse_converters.hpp"
#include "graph/glover.hpp"
#include "graph/greedy.hpp"
#include "graph/hopcroft_karp.hpp"
#include "util/check.hpp"

namespace wdm::core {

namespace {

Algorithm resolve(Algorithm requested, const ConversionScheme& scheme) {
  if (requested != Algorithm::kAuto) return requested;
  if (scheme.is_full_range()) return Algorithm::kFullRange;
  return scheme.kind() == ConversionKind::kCircular
             ? Algorithm::kBreakFirstAvailable
             : Algorithm::kFirstAvailable;
}

/// Compacts a plain adjacency interval onto the available channels:
/// prefix[v] = number of available channels with index < v. An interval of
/// channels maps to an interval of compact indices (possibly empty), which
/// is how Section V's right-vertex deletion preserves convexity.
graph::Interval compact_interval(const graph::Interval& iv,
                                 const std::vector<std::int32_t>& prefix) {
  const auto lo = prefix[static_cast<std::size_t>(iv.begin)];
  const auto hi = prefix[static_cast<std::size_t>(iv.end) + 1] - 1;
  return graph::Interval{lo, hi};
}

}  // namespace

const char* to_string(RejectReason reason) noexcept {
  switch (reason) {
    case RejectReason::kGranted: return "granted";
    case RejectReason::kUndecided: return "undecided";
    case RejectReason::kNoChannel: return "no-channel";
    case RejectReason::kInvalidOutputFiber: return "invalid-output-fiber";
    case RejectReason::kInvalidWavelength: return "invalid-wavelength";
    case RejectReason::kInvalidInputFiber: return "invalid-input-fiber";
    case RejectReason::kInvalidDuration: return "invalid-duration";
    case RejectReason::kInvalidPriority: return "invalid-priority";
    case RejectReason::kBadAvailabilityMask: return "bad-availability-mask";
    case RejectReason::kInternalError: return "internal-error";
    case RejectReason::kFaulted: return "faulted";
    case RejectReason::kBadHealthMask: return "bad-health-mask";
  }
  return "unknown";
}

RejectReason validate_request(const Request& r, std::int32_t k) noexcept {
  if (r.wavelength < 0 || r.wavelength >= k) {
    return RejectReason::kInvalidWavelength;
  }
  if (r.input_fiber < 0) return RejectReason::kInvalidInputFiber;
  if (r.duration < 1) return RejectReason::kInvalidDuration;
  return RejectReason::kGranted;
}

OutputPortScheduler::OutputPortScheduler(ConversionScheme scheme,
                                         Algorithm algorithm,
                                         Arbitration arbitration,
                                         std::uint64_t seed,
                                         util::ThreadPool* pool)
    : scheme_(std::move(scheme)),
      algorithm_(resolve(algorithm, scheme_)),
      arbitration_(arbitration),
      rng_(seed),
      pool_(pool),
      converter_budget_(scheme_.k()),
      rr_cursor_(static_cast<std::size_t>(scheme_.k()), 0) {
  switch (algorithm_) {
    case Algorithm::kFirstAvailable:
    case Algorithm::kGlover:
      WDM_CHECK_MSG(scheme_.kind() == ConversionKind::kNonCircular,
                    "this algorithm requires non-circular conversion");
      break;
    case Algorithm::kBreakFirstAvailable:
    case Algorithm::kApproxBfa:
      WDM_CHECK_MSG(scheme_.kind() == ConversionKind::kCircular &&
                        !scheme_.is_full_range(),
                    "this algorithm requires circular, non-full conversion");
      break;
    case Algorithm::kFullRange:
      WDM_CHECK_MSG(scheme_.is_full_range(),
                    "full-range rule requires a full-range scheme");
      break;
    case Algorithm::kHopcroftKarp:
    case Algorithm::kGreedyMaximal:
    case Algorithm::kSparseBudgeted:
      break;
    case Algorithm::kAuto:
      WDM_CHECK_MSG(false, "kAuto must have been resolved");
      break;
  }
}

void OutputPortScheduler::set_converter_budget(std::int32_t budget) {
  WDM_CHECK_MSG(budget >= 0, "converter budget must be nonnegative");
  converter_budget_ = budget;
}

ChannelAssignment OutputPortScheduler::assign_channels(
    const RequestVector& requests, std::span<const std::uint8_t> available) {
  switch (algorithm_) {
    case Algorithm::kFirstAvailable:
      return first_available(requests, scheme_, available);
    case Algorithm::kBreakFirstAvailable:
      return break_first_available(requests, scheme_, available, pool_);
    case Algorithm::kApproxBfa:
      return approx_break_first_available(requests, scheme_, available)
          .assignment;
    case Algorithm::kFullRange:
      return full_range_schedule(requests, available);
    case Algorithm::kSparseBudgeted:
      return sparse_converter_schedule(requests, scheme_, converter_budget_,
                                       available)
          .assignment;
    case Algorithm::kGlover: {
      // Compact occupied channels away so the graph stays convex, run
      // Glover's algorithm, then map matched columns back to channels.
      const std::int32_t k = scheme_.k();
      std::vector<std::int32_t> prefix(static_cast<std::size_t>(k) + 1, 0);
      std::vector<Channel> channel_of_compact;
      for (Channel v = 0; v < k; ++v) {
        const bool free =
            available.empty() || available[static_cast<std::size_t>(v)] != 0;
        prefix[static_cast<std::size_t>(v) + 1] =
            prefix[static_cast<std::size_t>(v)] + (free ? 1 : 0);
        if (free) channel_of_compact.push_back(v);
      }
      const auto wavelengths = requests.to_sorted_wavelengths();
      std::vector<graph::Interval> intervals;
      intervals.reserve(wavelengths.size());
      for (const Wavelength w : wavelengths) {
        intervals.push_back(
            compact_interval(scheme_.adjacency_plain(w), prefix));
      }
      const graph::ConvexBipartiteGraph convex(
          std::move(intervals),
          static_cast<graph::VertexId>(channel_of_compact.size()));
      const graph::Matching m = graph::glover_maximum_matching(convex);
      ChannelAssignment out(k);
      for (graph::VertexId col = 0;
           col < static_cast<graph::VertexId>(channel_of_compact.size());
           ++col) {
        const graph::VertexId j = m.left_of(col);
        if (j == graph::kNoVertex) continue;
        const Channel v = channel_of_compact[static_cast<std::size_t>(col)];
        out.source[static_cast<std::size_t>(v)] =
            wavelengths[static_cast<std::size_t>(j)];
        out.granted += 1;
      }
      return out;
    }
    case Algorithm::kHopcroftKarp:
    case Algorithm::kGreedyMaximal: {
      std::vector<std::uint8_t> mask(available.begin(), available.end());
      const RequestGraph g(scheme_, requests, std::move(mask));
      const graph::Matching m =
          algorithm_ == Algorithm::kHopcroftKarp
              ? graph::hopcroft_karp(g.to_bipartite())
              : graph::greedy_maximal_matching(g.to_bipartite(), rng_);
      ChannelAssignment out(scheme_.k());
      for (Channel v = 0; v < scheme_.k(); ++v) {
        const graph::VertexId j = m.left_of(v);
        if (j == graph::kNoVertex) continue;
        out.source[static_cast<std::size_t>(v)] = g.wavelength_of(j);
        out.granted += 1;
      }
      return out;
    }
    case Algorithm::kAuto:
      break;
  }
  util::check_failed("algorithm dispatch", __FILE__, __LINE__, "unreachable");
}

ChannelAssignment OutputPortScheduler::assign_channels(
    const RequestVector& requests, std::span<const std::uint8_t> available,
    const HealthMask& health) {
  if (health.fiber_faulted) return ChannelAssignment(scheme_.k());
  if (health.all_healthy()) return assign_channels(requests, available);
  const HealthReduction red = apply_health(requests, available, health);
  ChannelAssignment out = assign_channels(red.requests, red.availability);
  for (Channel u = 0; u < scheme_.k(); ++u) {
    if (red.pre_granted[static_cast<std::size_t>(u)] == 0) continue;
    WDM_DCHECK(out.source[static_cast<std::size_t>(u)] == kNone);
    out.source[static_cast<std::size_t>(u)] = u;
    out.granted += 1;
  }
  return out;
}

std::vector<PortDecision> OutputPortScheduler::schedule(
    std::span<const Request> requests, std::span<const std::uint8_t> available,
    const HealthMask* health) {
  const std::int32_t k = scheme_.k();
  std::vector<PortDecision> decisions(requests.size());

  // Externally supplied data never aborts the slot: a wrong-shaped mask or a
  // malformed request yields per-request rejections instead of a WDM_CHECK
  // throw (the kernels below still enforce their contracts).
  if (!available.empty() &&
      static_cast<std::int32_t>(available.size()) != k) {
    for (auto& d : decisions) {
      d = PortDecision::reject(RejectReason::kBadAvailabilityMask);
    }
    return decisions;
  }
  if (health != nullptr) {
    if (!health->channels.empty() &&
        static_cast<std::int32_t>(health->channels.size()) != k) {
      for (auto& d : decisions) {
        d = PortDecision::reject(RejectReason::kBadHealthMask);
      }
      return decisions;
    }
    // A fiber cut outranks per-request validation: nothing on a dead fiber
    // is inspected, everything is rejected as faulted.
    if (health->fiber_faulted) {
      for (auto& d : decisions) {
        d = PortDecision::reject(RejectReason::kFaulted);
      }
      return decisions;
    }
    if (health->all_healthy()) health = nullptr;
  }

  RequestVector rv(k);
  for (std::size_t idx = 0; idx < requests.size(); ++idx) {
    const RejectReason reason = validate_request(requests[idx], k);
    if (reason != RejectReason::kGranted) {
      decisions[idx] = PortDecision::reject(reason);
      continue;
    }
    rv.add(requests[idx].wavelength);
  }

  const ChannelAssignment assignment =
      health != nullptr ? assign_channels(rv, available, *health)
                        : assign_channels(rv, available);

  // Channels won by each wavelength, in increasing channel order.
  std::vector<std::vector<Channel>> channels_won(static_cast<std::size_t>(k));
  for (Channel v = 0; v < k; ++v) {
    const Wavelength w = assignment.source[static_cast<std::size_t>(v)];
    if (w != kNone) channels_won[static_cast<std::size_t>(w)].push_back(v);
  }

  // Requests of each wavelength, in arrival (input) order. Malformed
  // requests were rejected above and never compete.
  std::vector<std::vector<std::size_t>> members(static_cast<std::size_t>(k));
  for (std::size_t idx = 0; idx < requests.size(); ++idx) {
    if (decisions[idx].reason != RejectReason::kUndecided) continue;
    members[static_cast<std::size_t>(requests[idx].wavelength)].push_back(idx);
  }

  for (Wavelength w = 0; w < k; ++w) {
    auto& group = members[static_cast<std::size_t>(w)];
    const auto& won = channels_won[static_cast<std::size_t>(w)];
    if (won.empty()) continue;
    WDM_DCHECK(won.size() <= group.size());

    // Arbitration: choose |won| winners among the group (Section III:
    // "a random selecting or a round-robin scheduling procedure").
    std::vector<std::size_t> winners;
    winners.reserve(won.size());
    switch (arbitration_) {
      case Arbitration::kFifo:
        winners.assign(group.begin(),
                       group.begin() + static_cast<std::ptrdiff_t>(won.size()));
        break;
      case Arbitration::kRoundRobin: {
        auto& cursor = rr_cursor_[static_cast<std::size_t>(w)];
        const std::size_t n = group.size();
        for (std::size_t t = 0; t < won.size(); ++t) {
          winners.push_back(group[(cursor + t) % n]);
        }
        cursor = static_cast<std::uint32_t>((cursor + won.size()) % n);
        break;
      }
      case Arbitration::kRandom: {
        rng_.shuffle(group);
        winners.assign(group.begin(),
                       group.begin() + static_cast<std::ptrdiff_t>(won.size()));
        break;
      }
    }
    for (std::size_t t = 0; t < won.size(); ++t) {
      decisions[winners[t]] = PortDecision::grant(won[t]);
    }
  }
  // Everything still undecided competed and lost: an explicit capacity
  // rejection, so no decision ever leaves here as kUndecided.
  for (auto& d : decisions) {
    if (!d.granted && d.reason == RejectReason::kUndecided) {
      d = PortDecision::reject(RejectReason::kNoChannel);
    }
  }
  return decisions;
}

}  // namespace wdm::core
