// Wavelength indices and modular (circular) index arithmetic.
//
// Section II.A of the paper represents adjacency sets of circular symmetric
// conversion as intervals of integers taken "mod k". All circular reasoning
// in this library is phrased as *forward distances* mod k compared as plain
// integers, which sidesteps the ambiguity of empty vs. wrapped intervals that
// naive [x, y]-mod-k notation has.
#pragma once

#include <cstdint>

namespace wdm::core {

/// Index of a wavelength (input side) or wavelength channel (output side),
/// in [0, k).
using Wavelength = std::int32_t;
using Channel = std::int32_t;

/// Sentinel: "no wavelength / channel".
inline constexpr std::int32_t kNone = -1;

/// Mathematical mod: result in [0, k) for any x. k must be positive.
constexpr std::int32_t mod_k(std::int64_t x, std::int32_t k) noexcept {
  const auto m = static_cast<std::int32_t>(x % k);
  return m < 0 ? m + k : m;
}

/// Forward (clockwise) distance from `from` to `to` on the k-cycle: the
/// number of +1 steps needed, in [0, k).
constexpr std::int32_t fwd(std::int32_t from, std::int32_t to,
                           std::int32_t k) noexcept {
  return mod_k(static_cast<std::int64_t>(to) - from, k);
}

}  // namespace wdm::core
