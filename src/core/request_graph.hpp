// The request graph (Section II.B, Figure 3).
//
// Left vertices are the individual connection requests destined for one
// output fiber, ordered by wavelength (ties in arrival order); right vertices
// are the k output wavelength channels in index order. There is an edge
// (a_j, b_u) iff the request's wavelength can be converted to channel u and
// channel u is currently available (Section V deletes occupied channels).
//
// This vertex-level form exists for the generic matching oracles, the
// crossing-edge machinery, and the paper's worked examples. The production
// schedulers never materialise it — they run on the RequestVector alone.
#pragma once

#include <cstdint>
#include <vector>

#include "core/conversion.hpp"
#include "core/health.hpp"
#include "core/request.hpp"
#include "graph/bipartite_graph.hpp"
#include "graph/convex.hpp"

namespace wdm::core {

/// All-channels-free availability mask.
std::vector<std::uint8_t> all_available(std::int32_t k);

class RequestGraph {
 public:
  /// Builds from per-wavelength counts with every channel available.
  RequestGraph(ConversionScheme scheme, const RequestVector& requests);
  /// Builds with an explicit channel availability mask (size k, 1 = free).
  RequestGraph(ConversionScheme scheme, const RequestVector& requests,
               std::vector<std::uint8_t> available);
  /// Builds the *fault-reduced* request graph (core/health.hpp): a faulted
  /// fiber has no edges, a channel-faulted channel has no edges, and a
  /// converter-faulted channel keeps only its same-wavelength edges. This is
  /// the oracle's ground truth for degraded-mode scheduling.
  RequestGraph(ConversionScheme scheme, const RequestVector& requests,
               std::vector<std::uint8_t> available, HealthMask health);

  const ConversionScheme& scheme() const noexcept { return scheme_; }
  std::int32_t k() const noexcept { return scheme_.k(); }
  std::int32_t n_requests() const noexcept {
    return static_cast<std::int32_t>(wavelengths_.size());
  }
  /// W(j): wavelength of the j-th left vertex (paper notation).
  Wavelength wavelength_of(std::int32_t j) const;
  const std::vector<Wavelength>& wavelengths() const noexcept {
    return wavelengths_;
  }
  bool channel_available(Channel u) const;
  const std::vector<std::uint8_t>& availability() const noexcept {
    return available_;
  }
  const HealthMask& health() const noexcept { return health_; }

  /// Edge predicate: conversion feasible, channel free, and hardware healthy
  /// enough (converter-faulted channels accept only their own wavelength).
  bool has_edge(std::int32_t j, Channel u) const;

  /// Explicit edge-list form for the generic oracles.
  graph::BipartiteGraph to_bipartite() const;

  /// Interval form for non-circular schemes (convex by Section III); channel
  /// deletion is handled by the caller via availability-aware algorithms, so
  /// this conversion requires all channels free.
  graph::ConvexBipartiteGraph to_convex() const;

 private:
  ConversionScheme scheme_;
  std::vector<Wavelength> wavelengths_;  // sorted ascending
  std::vector<std::uint8_t> available_;  // size k
  HealthMask health_;                    // all-healthy unless given
};

}  // namespace wdm::core
