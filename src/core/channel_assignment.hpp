// The output of a per-output-fiber scheduling kernel.
//
// Mirrors the paper's hardware sketch: "the right side vertices of the
// request graph can be implemented by a k x 1 vector with each element
// storing the decision of which input wavelength channel it is assigned to"
// (Section II.B). Individual request identities are resolved later by the
// arbitration stage.
#pragma once

#include <cstdint>
#include <vector>

#include "core/wavelength.hpp"

namespace wdm::core {

struct ChannelAssignment {
  /// source[u] = input wavelength granted output channel u, or kNone.
  std::vector<Wavelength> source;
  /// Number of granted requests (= matching size).
  std::int32_t granted = 0;

  explicit ChannelAssignment(std::int32_t k)
      : source(static_cast<std::size_t>(k), kNone) {}

  /// Clears to the all-rejected state for `k` channels. Reuses the existing
  /// capacity, so resetting a warm scratch assignment never allocates — the
  /// property the zero-allocation slot pipeline relies on.
  void reset(std::int32_t k) {
    source.assign(static_cast<std::size_t>(k), kNone);
    granted = 0;
  }

  std::int32_t k() const noexcept {
    return static_cast<std::int32_t>(source.size());
  }

  /// Per-wavelength grant counts (how many channels each wavelength won).
  std::vector<std::int32_t> grants_per_wavelength() const {
    std::vector<std::int32_t> g(source.size(), 0);
    for (const Wavelength w : source) {
      if (w != kNone) g[static_cast<std::size_t>(w)] += 1;
    }
    return g;
  }
};

}  // namespace wdm::core
