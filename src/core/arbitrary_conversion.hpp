// Arbitrary wavelength-conversion capability.
//
// The paper's fast algorithms exploit the *interval* structure of adjacent-
// wavelength converters. Real devices can deviate from it (parametric
// converters reach λ_pump − λ_in; multi-stage designs have gaps), and for
// such technologies the request graph has no convexity to exploit — the
// right tool is the generic maximum matching the paper cites as baseline.
//
// ArbitraryConversion models any conversion relation as explicit per-
// wavelength channel sets and schedules via Hopcroft–Karp. When the
// relation happens to be one of the paper's interval schemes, the result
// provably matches FA/BFA (tested) — this module is the bridge that lets
// downstream users adopt the library even for non-interval converters.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/channel_assignment.hpp"
#include "core/conversion.hpp"
#include "core/request.hpp"

namespace wdm::core {

class ArbitraryConversion {
 public:
  /// `reachable[w]` lists the output channels wavelength w can convert to
  /// (any order; duplicates rejected).
  ArbitraryConversion(std::int32_t k,
                      std::vector<std::vector<Channel>> reachable);

  /// Imports one of the paper's interval schemes.
  static ArbitraryConversion from_scheme(const ConversionScheme& scheme);

  std::int32_t k() const noexcept {
    return static_cast<std::int32_t>(reachable_.size());
  }
  bool can_convert(Wavelength in, Channel out) const;
  const std::vector<Channel>& reachable(Wavelength in) const;
  /// Maximum |reachable(w)| — the analogue of the conversion degree.
  std::int32_t max_degree() const noexcept;

 private:
  std::vector<std::vector<Channel>> reachable_;  // sorted ascending
};

/// Maximum-matching schedule under an arbitrary conversion relation
/// (Hopcroft–Karp on the explicit request graph, O((Nk)^1.5 d)).
ChannelAssignment schedule_arbitrary(const RequestVector& requests,
                                     const ArbitraryConversion& conversion,
                                     std::span<const std::uint8_t> available = {});

}  // namespace wdm::core
