#include "core/arbitrary_conversion.hpp"

#include <algorithm>

#include "graph/bipartite_graph.hpp"
#include "graph/hopcroft_karp.hpp"
#include "util/check.hpp"

namespace wdm::core {

ArbitraryConversion::ArbitraryConversion(
    std::int32_t k, std::vector<std::vector<Channel>> reachable)
    : reachable_(std::move(reachable)) {
  WDM_CHECK_MSG(k > 0, "need at least one wavelength");
  WDM_CHECK_MSG(static_cast<std::int32_t>(reachable_.size()) == k,
                "need one reachable set per wavelength");
  for (auto& set : reachable_) {
    std::sort(set.begin(), set.end());
    WDM_CHECK_MSG(std::adjacent_find(set.begin(), set.end()) == set.end(),
                  "duplicate channel in a reachable set");
    for (const Channel v : set) {
      WDM_CHECK_MSG(v >= 0 && v < k, "reachable channel out of range");
    }
  }
}

ArbitraryConversion ArbitraryConversion::from_scheme(
    const ConversionScheme& scheme) {
  std::vector<std::vector<Channel>> reachable;
  reachable.reserve(static_cast<std::size_t>(scheme.k()));
  for (Wavelength w = 0; w < scheme.k(); ++w) {
    reachable.push_back(scheme.adjacency_list(w));
  }
  return ArbitraryConversion(scheme.k(), std::move(reachable));
}

bool ArbitraryConversion::can_convert(Wavelength in, Channel out) const {
  WDM_CHECK(in >= 0 && in < k() && out >= 0 && out < k());
  const auto& set = reachable_[static_cast<std::size_t>(in)];
  return std::binary_search(set.begin(), set.end(), out);
}

const std::vector<Channel>& ArbitraryConversion::reachable(Wavelength in) const {
  WDM_CHECK(in >= 0 && in < k());
  return reachable_[static_cast<std::size_t>(in)];
}

std::int32_t ArbitraryConversion::max_degree() const noexcept {
  std::size_t best = 0;
  for (const auto& set : reachable_) best = std::max(best, set.size());
  return static_cast<std::int32_t>(best);
}

ChannelAssignment schedule_arbitrary(const RequestVector& requests,
                                     const ArbitraryConversion& conversion,
                                     std::span<const std::uint8_t> available) {
  const std::int32_t k = conversion.k();
  WDM_CHECK_MSG(requests.k() == k, "request vector and conversion disagree on k");
  WDM_CHECK_MSG(available.empty() ||
                    static_cast<std::int32_t>(available.size()) == k,
                "availability mask must have one entry per channel");

  const auto wavelengths = requests.to_sorted_wavelengths();
  graph::BipartiteGraph g(static_cast<graph::VertexId>(wavelengths.size()), k);
  for (std::size_t j = 0; j < wavelengths.size(); ++j) {
    for (const Channel v : conversion.reachable(wavelengths[j])) {
      if (!available.empty() && available[static_cast<std::size_t>(v)] == 0) {
        continue;
      }
      g.add_edge(static_cast<graph::VertexId>(j), v);
    }
  }
  const auto matching = graph::hopcroft_karp(g);

  ChannelAssignment out(k);
  for (Channel v = 0; v < k; ++v) {
    const graph::VertexId j = matching.left_of(v);
    if (j == graph::kNoVertex) continue;
    out.source[static_cast<std::size_t>(v)] =
        wavelengths[static_cast<std::size_t>(j)];
    out.granted += 1;
  }
  return out;
}

}  // namespace wdm::core
