// Graphviz (DOT) export of the paper's figures.
//
// Renders conversion graphs (Figure 2) and request graphs (Figure 3) as
// left-to-right bipartite layouts; a matching or channel assignment can be
// highlighted (bold edges), reproducing the Figure 4/5 drawings. Pipe the
// output through `dot -Tsvg` to regenerate the diagrams.
#pragma once

#include <string>

#include "core/channel_assignment.hpp"
#include "core/conversion.hpp"
#include "core/request_graph.hpp"
#include "graph/matching.hpp"

namespace wdm::core {

/// The conversion graph of Figure 2 as a DOT digraph.
std::string conversion_graph_dot(const ConversionScheme& scheme);

/// The request graph of Figure 3; if `matching` is non-null its edges are
/// drawn bold (Figure 4). The matching must be over (n_requests, k).
std::string request_graph_dot(const RequestGraph& graph,
                              const graph::Matching* matching = nullptr);

/// Converts a channel assignment into a vertex-level matching on the given
/// request graph (each granted channel claims the first unclaimed request of
/// its source wavelength), e.g. to feed request_graph_dot.
graph::Matching assignment_to_matching(const RequestGraph& graph,
                                       const ChannelAssignment& assignment);

}  // namespace wdm::core
