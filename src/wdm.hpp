// Umbrella header: the whole public API of wdmsched.
//
// Convenience for downstream users; the library's own code includes the
// specific headers it needs.
#pragma once

// util — RNG, statistics, tables, CLI, threading, timing
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/snapshot.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/threadpool.hpp"
#include "util/timer.hpp"

// graph — generic bipartite matching substrate
#include "graph/bipartite_graph.hpp"
#include "graph/convex.hpp"
#include "graph/generators.hpp"
#include "graph/glover.hpp"
#include "graph/greedy.hpp"
#include "graph/hopcroft_karp.hpp"
#include "graph/kuhn.hpp"
#include "graph/matching.hpp"
#include "graph/mincost_matching.hpp"

// core — the paper's algorithms and their extensions
#include "core/arbitrary_conversion.hpp"
#include "core/break_first_available.hpp"
#include "core/breaking.hpp"
#include "core/channel_assignment.hpp"
#include "core/conversion.hpp"
#include "core/crossing.hpp"
#include "core/distributed.hpp"
#include "core/dot.hpp"
#include "core/first_available.hpp"
#include "core/full_range.hpp"
#include "core/min_conversion.hpp"
#include "core/pim.hpp"
#include "core/priority.hpp"
#include "core/request.hpp"
#include "core/request_graph.hpp"
#include "core/scheduler.hpp"
#include "core/sparse_converters.hpp"
#include "core/wavelength.hpp"

// hw — register-level hardware model
#include "hw/arbiter.hpp"
#include "hw/bitvec.hpp"
#include "hw/cost_model.hpp"
#include "hw/fabric.hpp"
#include "hw/hw_scheduler.hpp"
#include "hw/request_register.hpp"
#include "hw/vcd.hpp"

// sim — slotted and asynchronous simulators
#include "sim/admission.hpp"
#include "sim/analysis.hpp"
#include "sim/async.hpp"
#include "sim/checkpoint.hpp"
#include "sim/interconnect.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"
#include "sim/simulation.hpp"
#include "sim/trace.hpp"
#include "sim/traffic.hpp"
